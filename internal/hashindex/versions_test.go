package hashindex

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func mustPush(t *testing.T, vc *VersionChains, key, seq, loc uint64) *Version {
	t.Helper()
	v, err := vc.Push(key, seq, loc)
	if err != nil {
		t.Fatalf("Push(%d,%d,%d): %v", key, seq, loc, err)
	}
	return v
}

func TestVersionChainBasics(t *testing.T) {
	vc := NewVersionChains(8)
	if _, _, err := vc.GetAtOrBefore(1, 100); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty chain: want ErrNotFound, got %v", err)
	}
	v1 := mustPush(t, vc, 1, 10, 1000)
	// Pending blocks visibility at ts >= seq...
	if _, _, err := vc.GetAtOrBefore(1, 10); !errors.Is(err, ErrPendingVersion) {
		t.Fatalf("pending head: want ErrPendingVersion, got %v", err)
	}
	// ...but not below it.
	if _, _, err := vc.GetAtOrBefore(1, 9); !errors.Is(err, ErrNotFound) {
		t.Fatalf("below pending: want ErrNotFound, got %v", err)
	}
	vc.Commit(v1)
	loc, _, err := vc.GetAtOrBefore(1, 10)
	if err != nil || loc != 1000 {
		t.Fatalf("committed read: got (%d, %v)", loc, err)
	}

	v2 := mustPush(t, vc, 1, 20, 2000)
	vc.Commit(v2)
	v3 := mustPush(t, vc, 1, 30, 3000)
	vc.Commit(v3)
	for _, tc := range []struct {
		ts, want uint64
	}{{10, 1000}, {15, 1000}, {20, 2000}, {29, 2000}, {30, 3000}, {99, 3000}} {
		loc, _, err := vc.GetAtOrBefore(1, tc.ts)
		if err != nil || loc != tc.want {
			t.Fatalf("GetAtOrBefore(ts=%d): got (%d, %v), want %d", tc.ts, loc, err, tc.want)
		}
	}
	if lc := vc.LatestCommitted(1); lc == nil || lc.Seq != 30 {
		t.Fatalf("LatestCommitted: %+v", lc)
	}
	if vc.ChainLen(1) != 3 || vc.Nodes() != 3 || vc.Keys() != 1 {
		t.Fatalf("stats: len=%d nodes=%d keys=%d", vc.ChainLen(1), vc.Nodes(), vc.Keys())
	}
	if got := vc.VersionAtLoc(1, 2000); got != v2 {
		t.Fatalf("VersionAtLoc(2000) = %v", got)
	}
	v2.SetLoc(2222)
	if got := vc.VersionAtLoc(1, 2222); got != v2 {
		t.Fatal("VersionAtLoc after SetLoc miss")
	}
}

func TestVersionAbortUnlinks(t *testing.T) {
	vc := NewVersionChains(8)
	v1 := mustPush(t, vc, 7, 5, 500)
	vc.Commit(v1)
	v2 := mustPush(t, vc, 7, 6, 600)
	vc.Abort(7, v2)
	loc, _, err := vc.GetAtOrBefore(7, 100)
	if err != nil || loc != 500 {
		t.Fatalf("after abort: got (%d, %v), want 500", loc, err)
	}
	if vc.ChainLen(7) != 1 {
		t.Fatalf("chain len after abort: %d", vc.ChainLen(7))
	}
	// Aborting the only node leaves an empty chain, reads miss.
	vc2 := NewVersionChains(8)
	only := mustPush(t, vc2, 9, 1, 100)
	vc2.Abort(9, only)
	if _, _, err := vc2.GetAtOrBefore(9, 50); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty-after-abort: want ErrNotFound, got %v", err)
	}
}

func TestPruneKeepsPinVisibleVersions(t *testing.T) {
	vc := NewVersionChains(8)
	locs := []uint64{100, 200, 300, 400, 500}
	for i, loc := range locs {
		v := mustPush(t, vc, 1, uint64(i+1)*10, loc) // seqs 10..50
		vc.Commit(v)
	}
	var dead []uint64
	// Pins at 25 and 40: visible set is {seq 20 (at pin 25), seq 40 (at
	// pin 40), seq 50 (head)}; 10 and 30 are dead.
	n := vc.Prune(1, []uint64{25, 40}, true, func(_, loc uint64) { dead = append(dead, loc) })
	if n != 2 || len(dead) != 2 {
		t.Fatalf("pruned %d (%v), want 2", n, dead)
	}
	for _, d := range dead {
		if d != 100 && d != 300 {
			t.Fatalf("wrong dead loc %d", d)
		}
	}
	// Pin-visible reads still exact.
	for _, tc := range []struct {
		ts, want uint64
	}{{25, 200}, {40, 400}, {99, 500}} {
		loc, _, err := vc.GetAtOrBefore(1, tc.ts)
		if err != nil || loc != tc.want {
			t.Fatalf("after prune GetAtOrBefore(%d): (%d, %v), want %d", tc.ts, loc, err, tc.want)
		}
	}
	// No pins: everything but the newest committed version dies.
	n = vc.Prune(1, nil, true, nil)
	if n != 2 || vc.ChainLen(1) != 1 {
		t.Fatalf("final prune: pruned %d, len %d", n, vc.ChainLen(1))
	}
	loc, _, err := vc.GetAtOrBefore(1, 99)
	if err != nil || loc != 500 {
		t.Fatalf("head after full prune: (%d, %v)", loc, err)
	}
	// Orphaned family (root deleted): without keepNewest even the head dies
	// when no pin sees it.
	n = vc.Prune(1, nil, false, nil)
	if n != 1 || vc.ChainLen(1) != 0 {
		t.Fatalf("orphan prune: pruned %d, len %d", n, vc.ChainLen(1))
	}
}

func TestPruneNeverTouchesPending(t *testing.T) {
	vc := NewVersionChains(8)
	v1 := mustPush(t, vc, 3, 10, 100)
	vc.Commit(v1)
	v2 := mustPush(t, vc, 3, 20, 200)
	vc.Commit(v2)
	mustPush(t, vc, 3, 30, 300) // pending
	if n := vc.Prune(3, nil, true, nil); n != 1 {
		t.Fatalf("pruned %d, want 1 (only seq 10)", n)
	}
	if vc.ChainLen(3) != 2 {
		t.Fatalf("chain len %d, want 2 (pending + newest committed)", vc.ChainLen(3))
	}
}

func TestVersionSerializeRoundTrip(t *testing.T) {
	vc := NewVersionChains(16)
	for key := uint64(1); key <= 5; key++ {
		for s := uint64(1); s <= key; s++ {
			v := mustPush(t, vc, key, s*7, key*1000+s)
			vc.Commit(v)
		}
	}
	mustPush(t, vc, 2, 100, 9999) // pending: must not round-trip
	got, err := DeserializeVersionChains(vc.Serialize(), 16)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(1); key <= 5; key++ {
		if got.ChainLen(key) != int(key) {
			t.Fatalf("key %d: len %d, want %d", key, got.ChainLen(key), key)
		}
		for s := uint64(1); s <= key; s++ {
			loc, _, err := got.GetAtOrBefore(key, s*7)
			if err != nil || loc != key*1000+s {
				t.Fatalf("key %d ts %d: (%d, %v)", key, s*7, loc, err)
			}
		}
	}
	if got.Head(2).State() != VersionCommitted {
		t.Fatal("pending node leaked through serialization")
	}
}

// TestConcurrentSnapshotReads races lock-free timestamp reads against
// pushes, commits, and prunes — the exact interleaving the firmware's
// snapshot read path relies on. Run with -race.
func TestConcurrentSnapshotReads(t *testing.T) {
	vc := NewVersionChains(64)
	const keys = 16
	var mu sync.Mutex // stands in for ns.mu: serializes mutations

	// Seed one committed version per key at seq 1.
	for k := uint64(0); k < keys; k++ {
		vc.Commit(mustPush(t, vc, k, 1, k+1))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: push+commit new versions, prune with a pin at 1
		defer wg.Done()
		seq := uint64(1)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 4000; i++ {
			seq++
			k := uint64(rng.Intn(keys))
			mu.Lock()
			v, err := vc.Push(k, seq, seq*10)
			if err != nil {
				mu.Unlock()
				t.Error(err)
				return
			}
			vc.Commit(v)
			if i%64 == 0 {
				vc.Prune(k, []uint64{1}, true, nil)
			}
			mu.Unlock()
		}
		close(stop)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) { // readers pinned at ts=1 must always see the seed
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for k := uint64(0); k < keys; k++ {
					loc, _, err := vc.GetAtOrBefore(k, 1)
					if err != nil || loc != k+1 {
						t.Errorf("pinned read key %d: (%d, %v)", k, loc, err)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestPruneAllVisitsOnlyDeepChains(t *testing.T) {
	vc := NewVersionChains(32)
	// 16 shallow chains (one committed version each) and one deep chain.
	for key := uint64(1); key <= 16; key++ {
		vc.Commit(mustPush(t, vc, key, key, key*100))
	}
	for s := uint64(20); s <= 22; s++ {
		vc.Commit(mustPush(t, vc, 99, s, s*100))
	}
	visited := 0
	n := vc.PruneAll(nil, true, nil, func(int) { visited++ })
	if visited != 1 {
		t.Fatalf("visited %d chains, want just the deep one", visited)
	}
	if n != 2 || vc.ChainLen(99) != 1 {
		t.Fatalf("pruned %d (len %d), want 2 pruned, 1 kept", n, vc.ChainLen(99))
	}
	// Once every chain is shallow the pass is a no-op.
	visited = 0
	if n := vc.PruneAll(nil, true, nil, func(int) { visited++ }); n != 0 || visited != 0 {
		t.Fatalf("idle pass: pruned %d, visited %d, want 0/0", n, visited)
	}
	// An aborted head shrinks the chain back to shallow too.
	v := mustPush(t, vc, 5, 50, 5000)
	vc.Abort(5, v)
	if n := vc.PruneAll(nil, true, nil, nil); n != 0 {
		t.Fatalf("after abort: pruned %d, want 0", n)
	}
	// A pin-retained chain stays on the dirty list until the pin drops.
	vc.Commit(mustPush(t, vc, 7, 70, 7000))
	if n := vc.PruneAll([]uint64{7}, true, nil, nil); n != 0 || vc.ChainLen(7) != 2 {
		t.Fatalf("pinned prune: pruned %d, len %d, want 0/2", n, vc.ChainLen(7))
	}
	if n := vc.PruneAll(nil, true, nil, nil); n != 1 || vc.ChainLen(7) != 1 {
		t.Fatalf("unpinned prune: pruned %d, len %d, want 1/1", n, vc.ChainLen(7))
	}
	// Deleted-root pruning (keepNewest=false) still ranges every chain and
	// reclaims shallow ones.
	if n := vc.PruneAll(nil, false, nil, nil); n != 17 || vc.Nodes() != 0 {
		t.Fatalf("orphan prune: pruned %d, %d nodes left", n, vc.Nodes())
	}
}
