package hashindex

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	tb := New(64)
	if _, _, err := tb.Get(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get empty: %v", err)
	}
	if _, existed, err := tb.Put(1, 100); err != nil || existed {
		t.Fatalf("put: %v existed=%v", err, existed)
	}
	v, _, err := tb.Get(1)
	if err != nil || v != 100 {
		t.Fatalf("get: %v %d", err, v)
	}
	if _, existed, _ := tb.Put(1, 200); !existed {
		t.Fatal("update not detected")
	}
	v, _, _ = tb.Get(1)
	if v != 200 {
		t.Fatalf("after update: %d", v)
	}
	if _, err := tb.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tb.Get(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
	if _, err := tb.Delete(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestFillToCapacity(t *testing.T) {
	tb := New(8) // rounds to 8 slots
	cap := tb.Capacity()
	for i := 0; i < cap; i++ {
		if _, _, err := tb.Put(uint64(i), uint64(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if _, _, err := tb.Put(uint64(cap), 0); !errors.Is(err, ErrFull) {
		t.Fatalf("overfull put: %v", err)
	}
	// All entries still retrievable at load factor 1.0.
	for i := 0; i < cap; i++ {
		v, _, err := tb.Get(uint64(i))
		if err != nil || v != uint64(i) {
			t.Fatalf("get %d: %v %d", i, err, v)
		}
	}
	if tb.LoadFactor() != 1.0 {
		t.Fatalf("load=%f", tb.LoadFactor())
	}
}

func TestTombstoneReuse(t *testing.T) {
	tb := New(8)
	cap := tb.Capacity()
	for i := 0; i < cap; i++ {
		tb.Put(uint64(i), uint64(i))
	}
	tb.Delete(3)
	if _, _, err := tb.Put(999, 999); err != nil {
		t.Fatalf("put into tombstone: %v", err)
	}
	v, _, err := tb.Get(999)
	if err != nil || v != 999 {
		t.Fatalf("get 999: %v", err)
	}
	// Keys that probed past the tombstone are still reachable.
	for i := 0; i < cap; i++ {
		if i == 3 {
			continue
		}
		if _, _, err := tb.Get(uint64(i)); err != nil {
			t.Fatalf("get %d after tombstone churn: %v", i, err)
		}
	}
}

func TestProbesGrowWithLoad(t *testing.T) {
	avg := func(load float64) float64 {
		tb := New(1 << 12)
		n := int(load * float64(tb.Capacity()))
		rng := rand.New(rand.NewSource(42))
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64()
			tb.Put(keys[i], 1)
		}
		total := 0
		for _, k := range keys {
			_, p, err := tb.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			total += p
		}
		return float64(total) / float64(n)
	}
	lo, hi := avg(0.1), avg(0.9)
	if hi <= lo*1.5 {
		t.Fatalf("probe cost did not grow with load: %.2f -> %.2f", lo, hi)
	}
}

func TestAutoGrow(t *testing.T) {
	tb := New(8)
	tb.AutoGrow = true
	for i := 0; i < 1000; i++ {
		if _, _, err := tb.Put(uint64(i), uint64(i*2)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if tb.Len() != 1000 {
		t.Fatalf("len=%d", tb.Len())
	}
	for i := 0; i < 1000; i++ {
		v, _, err := tb.Get(uint64(i))
		if err != nil || v != uint64(i*2) {
			t.Fatalf("get %d: %v %d", i, err, v)
		}
	}
}

func TestCompactDropsTombstones(t *testing.T) {
	tb := New(64)
	for i := 0; i < 48; i++ {
		tb.Put(uint64(i), uint64(i))
	}
	for i := 0; i < 24; i++ {
		tb.Delete(uint64(i))
	}
	tb.Compact()
	if tb.ghosts != 0 {
		t.Fatalf("ghosts=%d after compact", tb.ghosts)
	}
	for i := 24; i < 48; i++ {
		if _, _, err := tb.Get(uint64(i)); err != nil {
			t.Fatalf("lost key %d in compact", i)
		}
	}
	if tb.Len() != 24 {
		t.Fatalf("len=%d", tb.Len())
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	tb := New(256)
	rng := rand.New(rand.NewSource(3))
	want := map[uint64]uint64{}
	for i := 0; i < 150; i++ {
		k, v := rng.Uint64(), rng.Uint64()
		want[k] = v
		tb.Put(k, v)
	}
	got, err := Deserialize(tb.Serialize(), 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tb.Len() {
		t.Fatalf("len %d != %d", got.Len(), tb.Len())
	}
	for k, v := range want {
		gv, _, err := got.Get(k)
		if err != nil || gv != v {
			t.Fatalf("key %d: %v %d", k, err, gv)
		}
	}
}

func TestDeserializeErrors(t *testing.T) {
	if _, err := Deserialize([]byte{1, 2, 3}, 0.75); err == nil {
		t.Fatal("short input accepted")
	}
	b := make([]byte, 8)
	b[0] = 10 // claims 10 entries, provides none
	if _, err := Deserialize(b, 0.75); err == nil {
		t.Fatal("truncated entries accepted")
	}
}

func TestRangeVisitsAll(t *testing.T) {
	tb := New(64)
	for i := 0; i < 40; i++ {
		tb.Put(uint64(i), uint64(i))
	}
	seen := map[uint64]bool{}
	tb.Range(func(k, v uint64) bool {
		seen[k] = true
		return true
	})
	if len(seen) != 40 {
		t.Fatalf("visited %d", len(seen))
	}
	// Early termination.
	n := 0
	tb.Range(func(k, v uint64) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestQuickModelCheck(t *testing.T) {
	// Property: the table behaves exactly like a map under random
	// put/get/delete sequences, including near and at capacity.
	type op struct {
		Kind uint8
		Key  uint16
		Val  uint64
	}
	f := func(ops []op) bool {
		tb := New(64)
		model := map[uint64]uint64{}
		for _, o := range ops {
			k := uint64(o.Key % 96) // key space larger than live capacity
			switch o.Kind % 3 {
			case 0: // put
				_, existed, err := tb.Put(k, o.Val)
				if err != nil {
					if len(model) < tb.Capacity() {
						return false // spurious full
					}
					continue
				}
				if _, inModel := model[k]; existed != inModel {
					return false
				}
				model[k] = o.Val
			case 1: // get
				v, _, err := tb.Get(k)
				mv, ok := model[k]
				if ok != (err == nil) {
					return false
				}
				if ok && v != mv {
					return false
				}
			case 2: // delete
				_, err := tb.Delete(k)
				_, ok := model[k]
				if ok != (err == nil) {
					return false
				}
				delete(model, k)
			}
		}
		if tb.Len() != len(model) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
