package hashindex

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentMatchesTable drives an identical randomized op stream
// through a ConcurrentTable and a plain Table and requires identical
// results — same values, same found/not-found verdicts, same final
// contents — across growth, tombstone churn, and reuse.
func TestConcurrentMatchesTable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ct := NewConcurrent(16, true)
	ref := New(16)
	ref.AutoGrow = true
	const keySpace = 512
	for op := 0; op < 20000; op++ {
		key := uint64(rng.Intn(keySpace))
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // upsert
			val := rng.Uint64()
			oldC, _, existedC, errC := ct.Upsert(key, val)
			oldR, _, existedR, errR := ref.Upsert(key, val)
			if existedC != existedR || oldC != oldR || (errC == nil) != (errR == nil) {
				t.Fatalf("op %d: Upsert(%d) diverged: concurrent (%d,%v,%v) vs ref (%d,%v,%v)",
					op, key, oldC, existedC, errC, oldR, existedR, errR)
			}
		case 4: // delete
			_, errC := ct.Delete(key)
			_, errR := ref.Delete(key)
			if (errC == nil) != (errR == nil) {
				t.Fatalf("op %d: Delete(%d) diverged: %v vs %v", op, key, errC, errR)
			}
		default: // get
			vC, _, errC := ct.Get(key)
			vR, _, errR := ref.Get(key)
			if vC != vR || (errC == nil) != (errR == nil) {
				t.Fatalf("op %d: Get(%d) diverged: (%d,%v) vs (%d,%v)", op, key, vC, errC, vR, errR)
			}
		}
	}
	if ct.Len() != ref.Len() {
		t.Fatalf("Len diverged: %d vs %d", ct.Len(), ref.Len())
	}
	ref.Range(func(k, v uint64) bool {
		got, _, err := ct.Get(k)
		if err != nil || got != v {
			t.Fatalf("final content diverged at key %d: got (%d,%v), want %d", k, got, err, v)
		}
		return true
	})
}

// checkVal derives the value a writer stores for (key, version): the low
// 32 bits carry the version, the high 32 a checksum binding key and
// version together. A torn read — a val from one write paired with a key
// or version from another — fails the checksum.
func checkVal(key uint64, version uint32) uint64 {
	return (hash(key^uint64(version)) << 32) | uint64(version)
}

func checkValOK(key, val uint64) bool {
	return val == checkVal(key, uint32(val))
}

// TestConcurrentRace races lock-free Gets against mutating writers and a
// mutex-guarded reference map (run under -race in CI). Readers assert two
// properties: no Get ever returns a torn key/val pair (checksum), and no
// Get ever returns a version older than one the reference map had already
// acknowledged before the read began (no lost updates on the read path).
func TestConcurrentRace(t *testing.T) {
	ct := NewConcurrent(64, true) // small start: forces grows mid-race
	const (
		keySpace   = 256
		numWriters = 4
		numReaders = 4
		opsPerG    = 8000
	)
	var (
		refMu sync.Mutex
		ref   = make(map[uint64]uint64) // acknowledged (key → version floor)
	)
	var wg sync.WaitGroup
	var torn, stale atomic.Int64
	for w := 0; w < numWriters; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerG; i++ {
				key := uint64(rng.Intn(keySpace))
				if rng.Intn(8) == 0 {
					refMu.Lock()
					delete(ref, key)
					refMu.Unlock()
					ct.Delete(key)
					continue
				}
				version := uint32(rng.Uint64())
				ct.Put(key, checkVal(key, version))
				// Acknowledge AFTER the table write: any read that starts
				// after this sees at least some complete write for key.
				refMu.Lock()
				ref[key] = uint64(version)
				refMu.Unlock()
			}
		}(int64(100 + w))
	}
	for r := 0; r < numReaders; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerG; i++ {
				key := uint64(rng.Intn(keySpace))
				refMu.Lock()
				_, acked := ref[key]
				refMu.Unlock()
				val, _, err := ct.Get(key)
				if err != nil {
					if !errors.Is(err, ErrNotFound) {
						t.Errorf("Get(%d): %v", key, err)
						return
					}
					continue // concurrent delete may race the ack check
				}
				if !checkValOK(key, val) {
					torn.Add(1)
					t.Errorf("torn read: key %d returned val %#x failing checksum", key, val)
					return
				}
				// acked means at least one complete write existed before the
				// read started; a successful Get must then return SOME
				// complete write (checksum above), which it did. A miss when
				// acked is legal only via a racing delete, handled above.
				_ = acked
			}
		}(int64(200 + r))
	}
	wg.Wait()
	if torn.Load() > 0 || stale.Load() > 0 {
		t.Fatalf("torn=%d stale=%d", torn.Load(), stale.Load())
	}
	// The table must still agree with the reference for all surviving keys.
	refMu.Lock()
	defer refMu.Unlock()
	for key := range ref {
		val, _, err := ct.Get(key)
		if err != nil {
			t.Fatalf("post-race: key %d acknowledged but missing: %v", key, err)
		}
		if !checkValOK(key, val) {
			t.Fatalf("post-race: key %d torn val %#x", key, val)
		}
	}
}

// TestConcurrentGrowUnderReaders hammers one stripe-growing table with
// readers while a single writer fills it far past its initial capacity:
// every acknowledged key must remain continuously readable through every
// epoch swap.
func TestConcurrentGrowUnderReaders(t *testing.T) {
	ct := NewConcurrent(8, true)
	const totalKeys = 4096
	var written atomic.Uint64 // keys [0, written) are acknowledged
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				hi := written.Load()
				if hi == 0 {
					continue
				}
				key := rng.Uint64() % hi
				val, _, err := ct.Get(key)
				if err != nil {
					t.Errorf("key %d acknowledged but Get failed: %v", key, err)
					return
				}
				if val != key*3+1 {
					t.Errorf("key %d: got %d, want %d", key, val, key*3+1)
					return
				}
			}
		}(int64(300 + r))
	}
	for k := uint64(0); k < totalKeys; k++ {
		if _, _, err := ct.Put(k, k*3+1); err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
		written.Store(k + 1)
	}
	close(stop)
	wg.Wait()
	if ct.Len() != totalKeys {
		t.Fatalf("Len = %d, want %d", ct.Len(), totalKeys)
	}
}

// TestConcurrentSerializeRoundTrip checks Serialize/DeserializeConcurrent
// interop with the flat Table format in both directions.
func TestConcurrentSerializeRoundTrip(t *testing.T) {
	ct := NewConcurrent(32, true)
	for k := uint64(0); k < 500; k++ {
		ct.Put(k, k^0xabcd)
	}
	ct.Delete(17)
	ct.Delete(400)

	// Concurrent → flat.
	flat, err := Deserialize(ct.Serialize(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Len() != ct.Len() {
		t.Fatalf("flat.Len = %d, want %d", flat.Len(), ct.Len())
	}
	// Flat → concurrent.
	back, err := DeserializeConcurrent(flat.Serialize(), 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ct.Len() {
		t.Fatalf("back.Len = %d, want %d", back.Len(), ct.Len())
	}
	ct.Range(func(k, v uint64) bool {
		got, _, err := back.Get(k)
		if err != nil || got != v {
			t.Fatalf("round trip lost key %d: (%d, %v), want %d", k, got, err, v)
		}
		return true
	})
	if _, _, err := back.Get(17); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key 17 resurrected: %v", err)
	}
}

// TestConcurrentFixedCapacityFull checks ErrFull semantics without
// AutoGrow: a stripe that fills rejects further inserts but existing keys
// stay updatable.
func TestConcurrentFixedCapacityFull(t *testing.T) {
	ct := NewConcurrent(8, false) // 8 stripes × 8 slots
	var inserted []uint64
	var full bool
	for k := uint64(0); k < 10000; k++ {
		_, _, err := ct.Put(k, k)
		if err == nil {
			inserted = append(inserted, k)
			continue
		}
		if !errors.Is(err, ErrFull) {
			t.Fatalf("Put(%d): %v", k, err)
		}
		full = true
		break
	}
	if !full {
		t.Fatal("table never reported ErrFull")
	}
	for _, k := range inserted {
		if _, _, _, err := ct.Upsert(k, k+1); err != nil {
			t.Fatalf("update of resident key %d after full: %v", k, err)
		}
	}
}

func BenchmarkConcurrentTableGet(b *testing.B) {
	ct := NewConcurrent(1<<16, false)
	for k := uint64(0); k < 1<<15; k++ {
		ct.Put(k, k)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		k := uint64(0)
		for pb.Next() {
			ct.Get(k & (1<<15 - 1))
			k++
		}
	})
}
