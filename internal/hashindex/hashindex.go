// Package hashindex implements the per-namespace mapping tables KAML keeps
// in on-SSD DRAM (paper §IV-C): open-addressing hash tables from 64-bit
// application keys to packed physical locations.
//
// The table deliberately exposes how many entries each operation scanned
// ("probes"): the firmware charges controller CPU time per probed entry,
// which is what makes Get bandwidth degrade as the table's load factor grows
// (paper Fig. 5a). Capacity is fixed at construction unless AutoGrow is set,
// mirroring the paper's fixed 1024 MB table experiments.
//
// Two implementations share those semantics. Table is the plain
// single-threaded form, still used for serialization scratch and by callers
// that do their own locking. ConcurrentTable is the form the firmware mounts
// per namespace: striped sub-tables with per-slot sequence counters
// (seqlock), giving lock-free Gets that race mutations safely — the
// firmware's read path calls ConcurrentTable.Get with NO lock held, while
// mutations are serialized per namespace AND per stripe (see concurrent.go
// and the lock-hierarchy comment in internal/kamlssd/device.go).
package hashindex

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrFull is returned by Put when the table has no free slot.
var ErrFull = errors.New("hashindex: table full")

// ErrNotFound is returned when a key has no entry.
var ErrNotFound = errors.New("hashindex: key not found")

const (
	slotEmpty = iota
	slotUsed
	slotTombstone
)

// Table is a fixed-capacity open-addressing hash table with linear probing
// and tombstone deletion. It is not safe for concurrent use — callers that
// share one (the swap-in/swap-out scratch path) serialize access
// themselves; the firmware's live per-namespace tables are ConcurrentTable.
type Table struct {
	keys     []uint64
	vals     []uint64
	state    []uint8
	mask     uint64
	used     int // live entries
	ghosts   int // tombstones
	AutoGrow bool
}

// New returns a table with capacity for at least capacity entries,
// rounded up to a power of two.
func New(capacity int) *Table {
	n := 8
	for n < capacity {
		n <<= 1
	}
	return &Table{
		keys:  make([]uint64, n),
		vals:  make([]uint64, n),
		state: make([]uint8, n),
		mask:  uint64(n - 1),
	}
}

// Capacity returns the number of slots.
func (t *Table) Capacity() int { return len(t.keys) }

// Len returns the number of live entries.
func (t *Table) Len() int { return t.used }

// LoadFactor returns live entries / capacity.
func (t *Table) LoadFactor() float64 { return float64(t.used) / float64(len(t.keys)) }

// hash mixes a 64-bit key (splitmix64 finalizer).
func hash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// Get looks up key. probes is the number of slots scanned.
func (t *Table) Get(key uint64) (val uint64, probes int, err error) {
	i := hash(key) & t.mask
	for p := 1; p <= len(t.keys); p++ {
		switch t.state[i] {
		case slotEmpty:
			return 0, p, ErrNotFound
		case slotUsed:
			if t.keys[i] == key {
				return t.vals[i], p, nil
			}
		}
		i = (i + 1) & t.mask
	}
	return 0, len(t.keys), ErrNotFound
}

// Put inserts or updates key. probes is the number of slots scanned;
// existed reports whether the key was already present.
func (t *Table) Put(key, val uint64) (probes int, existed bool, err error) {
	if t.AutoGrow && t.used+t.ghosts >= len(t.keys)*3/4 {
		t.rehash(len(t.keys) * 2)
	}
	i := hash(key) & t.mask
	firstFree := -1
	for p := 1; p <= len(t.keys); p++ {
		switch t.state[i] {
		case slotEmpty:
			if firstFree >= 0 {
				i = uint64(firstFree)
				t.ghosts--
			}
			t.keys[i] = key
			t.vals[i] = val
			t.state[i] = slotUsed
			t.used++
			return p, false, nil
		case slotTombstone:
			if firstFree < 0 {
				firstFree = int(i)
			}
		case slotUsed:
			if t.keys[i] == key {
				t.vals[i] = val
				return p, true, nil
			}
		}
		i = (i + 1) & t.mask
	}
	if firstFree >= 0 {
		t.keys[firstFree] = key
		t.vals[firstFree] = val
		t.state[firstFree] = slotUsed
		t.ghosts--
		t.used++
		return len(t.keys), false, nil
	}
	return len(t.keys), false, ErrFull
}

// Upsert inserts or updates key in a single probe sequence and returns the
// previous value when the key already existed. It is Get+Put fused: the
// firmware's Put supersede path needs the old location to adjust valid-byte
// accounting, and probing the table twice for it would double the charged
// DRAM accesses (and the wall-clock work) of every update.
func (t *Table) Upsert(key, val uint64) (old uint64, probes int, existed bool, err error) {
	if t.AutoGrow && t.used+t.ghosts >= len(t.keys)*3/4 {
		t.rehash(len(t.keys) * 2)
	}
	i := hash(key) & t.mask
	firstFree := -1
	for p := 1; p <= len(t.keys); p++ {
		switch t.state[i] {
		case slotEmpty:
			if firstFree >= 0 {
				i = uint64(firstFree)
				t.ghosts--
			}
			t.keys[i] = key
			t.vals[i] = val
			t.state[i] = slotUsed
			t.used++
			return 0, p, false, nil
		case slotTombstone:
			if firstFree < 0 {
				firstFree = int(i)
			}
		case slotUsed:
			if t.keys[i] == key {
				old = t.vals[i]
				t.vals[i] = val
				return old, p, true, nil
			}
		}
		i = (i + 1) & t.mask
	}
	if firstFree >= 0 {
		t.keys[firstFree] = key
		t.vals[firstFree] = val
		t.state[firstFree] = slotUsed
		t.ghosts--
		t.used++
		return 0, len(t.keys), false, nil
	}
	return 0, len(t.keys), false, ErrFull
}

// Delete removes key. probes is the number of slots scanned.
func (t *Table) Delete(key uint64) (probes int, err error) {
	i := hash(key) & t.mask
	for p := 1; p <= len(t.keys); p++ {
		switch t.state[i] {
		case slotEmpty:
			return p, ErrNotFound
		case slotUsed:
			if t.keys[i] == key {
				t.state[i] = slotTombstone
				t.used--
				t.ghosts++
				return p, nil
			}
		}
		i = (i + 1) & t.mask
	}
	return len(t.keys), ErrNotFound
}

// Range calls fn for every live entry until fn returns false.
func (t *Table) Range(fn func(key, val uint64) bool) {
	for i, st := range t.state {
		if st == slotUsed {
			if !fn(t.keys[i], t.vals[i]) {
				return
			}
		}
	}
}

// rehash rebuilds the table with newCap slots, dropping tombstones.
func (t *Table) rehash(newCap int) {
	old := *t
	n := 8
	for n < newCap {
		n <<= 1
	}
	t.keys = make([]uint64, n)
	t.vals = make([]uint64, n)
	t.state = make([]uint8, n)
	t.mask = uint64(n - 1)
	t.used = 0
	t.ghosts = 0
	for i, st := range old.state {
		if st == slotUsed {
			_, _, err := t.Put(old.keys[i], old.vals[i])
			if err != nil {
				panic("hashindex: rehash overflow")
			}
		}
	}
}

// Clone returns a deep copy of the table (snapshot support).
func (t *Table) Clone() *Table {
	c := &Table{
		keys:     append([]uint64(nil), t.keys...),
		vals:     append([]uint64(nil), t.vals...),
		state:    append([]uint8(nil), t.state...),
		mask:     t.mask,
		used:     t.used,
		ghosts:   t.ghosts,
		AutoGrow: t.AutoGrow,
	}
	return c
}

// Compact rebuilds the table at its current capacity to drop tombstones.
func (t *Table) Compact() { t.rehash(len(t.keys)) }

// MemoryBytes estimates the table's DRAM footprint (TableEntryBytes per
// slot; see the per-entry cost constants in versions.go).
func (t *Table) MemoryBytes() int { return len(t.keys) * TableEntryBytes }

// Serialize writes the table's live entries in a flat format:
// 8-byte count, then (key, val) pairs. Used when the firmware swaps an
// idle namespace's table out to flash (paper §IV-C).
func (t *Table) Serialize() []byte {
	out := make([]byte, 8, 8+16*t.used)
	binary.LittleEndian.PutUint64(out, uint64(t.used))
	var kv [16]byte
	t.Range(func(k, v uint64) bool {
		binary.LittleEndian.PutUint64(kv[0:8], k)
		binary.LittleEndian.PutUint64(kv[8:16], v)
		out = append(out, kv[:]...)
		return true
	})
	return out
}

// Deserialize rebuilds a table from Serialize output, sized to hold the
// entries at the given target load factor.
func Deserialize(b []byte, targetLoad float64) (*Table, error) {
	if len(b) < 8 {
		return nil, errors.New("hashindex: short serialization")
	}
	n := binary.LittleEndian.Uint64(b)
	if uint64(len(b)-8) < n*16 {
		return nil, fmt.Errorf("hashindex: %d entries but only %d bytes", n, len(b)-8)
	}
	if targetLoad <= 0 || targetLoad > 1 {
		targetLoad = 0.75
	}
	t := New(int(float64(n)/targetLoad) + 8)
	for i := uint64(0); i < n; i++ {
		k := binary.LittleEndian.Uint64(b[8+i*16:])
		v := binary.LittleEndian.Uint64(b[16+i*16:])
		if _, _, err := t.Put(k, v); err != nil {
			return nil, err
		}
	}
	return t, nil
}
