package flash

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/kaml-ssd/kaml/internal/sim"
)

// scriptInjector fails operations per a fixed script: verdicts[i] decides
// the i-th operation of the matching kind; anything past the script is OK.
type scriptInjector struct {
	op    Op
	calls int
	plan  []Verdict
}

func (s *scriptInjector) Decide(op Op, _ PPN, _ time.Duration) Verdict {
	if op != s.op {
		return VerdictOK
	}
	s.calls++
	if s.calls-1 < len(s.plan) {
		return s.plan[s.calls-1]
	}
	return VerdictOK
}

func TestInjectedProgramFailureConsumesPage(t *testing.T) {
	run(t, smallConfig(), func(e *sim.Engine, a *Array) {
		a.SetInjector(&scriptInjector{op: OpProgram, plan: []Verdict{VerdictFail}})
		p0 := a.BlockPPN(0, 0, 0, 0)
		payload := bytes.Repeat([]byte{0xEE}, 64)
		if err := a.ProgramPage(p0, payload, []byte{9}); !errors.Is(err, ErrInjectedFailure) {
			t.Fatalf("err=%v, want injected failure", err)
		}
		// The failed program consumed the page: it reads back as written
		// but holds garbage (all zeros), and the block's program pointer
		// moved on, so the rewrite must land on the next page.
		data, oob, err := a.ReadPage(p0)
		if err != nil {
			t.Fatalf("read of consumed page: %v", err)
		}
		if !bytes.Equal(data, make([]byte, a.Config().PageSize)) || !bytes.Equal(oob, make([]byte, a.Config().OOBSize)) {
			t.Fatal("consumed page should hold zeroed data and OOB")
		}
		if n := a.ProgrammedPages(p0); n != 1 {
			t.Fatalf("ProgrammedPages=%d, want 1", n)
		}
		if err := a.ProgramPage(p0, payload, nil); !errors.Is(err, ErrPageWritten) {
			t.Fatalf("reprogram of consumed page: %v", err)
		}
		p1 := a.BlockPPN(0, 0, 0, 1)
		if err := a.ProgramPage(p1, payload, []byte{9}); err != nil {
			t.Fatalf("rewrite to next page: %v", err)
		}
		got, _, err := a.ReadPage(p1)
		if err != nil || !bytes.Equal(got[:len(payload)], payload) {
			t.Fatalf("rewrite readback: %v", err)
		}
	})
}

func TestInjectedReadFailureIsTransient(t *testing.T) {
	run(t, smallConfig(), func(e *sim.Engine, a *Array) {
		p := a.BlockPPN(0, 0, 0, 0)
		payload := bytes.Repeat([]byte{0x5A}, 128)
		if err := a.ProgramPage(p, payload, []byte{1, 2}); err != nil {
			t.Fatal(err)
		}
		a.SetInjector(&scriptInjector{op: OpRead, plan: []Verdict{VerdictFail, VerdictFail}})
		for i := 0; i < 2; i++ {
			if _, _, err := a.ReadPage(p); !errors.Is(err, ErrInjectedFailure) {
				t.Fatalf("read %d: err=%v, want injected failure", i, err)
			}
		}
		// The medium is untouched: a retry succeeds with the data intact.
		data, oob, err := a.ReadPage(p)
		if err != nil || !bytes.Equal(data[:len(payload)], payload) || oob[0] != 1 {
			t.Fatalf("retry after injected read errors: %v", err)
		}
	})
}

func TestPowerCutProgramLeavesPageUnwritten(t *testing.T) {
	run(t, smallConfig(), func(e *sim.Engine, a *Array) {
		a.SetInjector(&scriptInjector{op: OpProgram, plan: []Verdict{VerdictPowerCut}})
		p := a.BlockPPN(0, 0, 0, 0)
		if err := a.ProgramPage(p, []byte{1}, nil); !errors.Is(err, ErrPowerCut) {
			t.Fatalf("err=%v, want power cut", err)
		}
		if a.Powered() {
			t.Fatal("array still powered after cut")
		}
		// Every operation fails until power returns.
		if _, _, err := a.ReadPage(p); !errors.Is(err, ErrPowerCut) {
			t.Fatalf("read while off: %v", err)
		}
		a.PowerOn()
		if n := a.ProgrammedPages(p); n != 0 {
			t.Fatalf("ProgrammedPages=%d after clean cut, want 0", n)
		}
		if err := a.ProgramPage(p, []byte{1}, nil); err != nil {
			t.Fatalf("program after power on: %v", err)
		}
	})
}

func TestPowerCutTornProgram(t *testing.T) {
	run(t, smallConfig(), func(e *sim.Engine, a *Array) {
		a.SetInjector(&scriptInjector{op: OpProgram, plan: []Verdict{VerdictPowerCutTorn}})
		p := a.BlockPPN(0, 0, 0, 0)
		payload := bytes.Repeat([]byte{0xAA}, 100)
		if err := a.ProgramPage(p, payload, []byte{7}); !errors.Is(err, ErrPowerCut) {
			t.Fatalf("err=%v, want power cut", err)
		}
		a.PowerOn()
		// A torn page was consumed: half the payload, zeroed OOB.
		if n := a.ProgrammedPages(p); n != 1 {
			t.Fatalf("ProgrammedPages=%d after torn cut, want 1", n)
		}
		data, oob, err := a.ReadPage(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data[:50], payload[:50]) || !bytes.Equal(data[50:100], make([]byte, 50)) {
			t.Fatal("torn page should hold the first half of the payload")
		}
		if !bytes.Equal(oob, make([]byte, a.Config().OOBSize)) {
			t.Fatal("torn page OOB should be zeroed")
		}
	})
}
