package flash

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"github.com/kaml-ssd/kaml/internal/sim"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Channels = 2
	cfg.ChipsPerChannel = 2
	cfg.BlocksPerChip = 4
	cfg.PagesPerBlock = 8
	return cfg
}

// run executes fn as the sole actor on a fresh engine and array.
func run(t *testing.T, cfg Config, fn func(e *sim.Engine, a *Array)) {
	t.Helper()
	e := sim.NewEngine()
	a := New(e, cfg)
	e.Go("test", func() { fn(e, a) })
	e.Wait()
}

func TestProgramReadRoundTrip(t *testing.T) {
	run(t, smallConfig(), func(e *sim.Engine, a *Array) {
		p := a.BlockPPN(0, 0, 0, 0)
		data := bytes.Repeat([]byte{0xAB}, 100)
		oob := []byte{1, 2, 3}
		if err := a.ProgramPage(p, data, oob); err != nil {
			t.Fatal(err)
		}
		got, gotOOB, err := a.ReadPage(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[:100], data) {
			t.Error("data mismatch")
		}
		if len(got) != a.Config().PageSize {
			t.Errorf("page padded to %d, want %d", len(got), a.Config().PageSize)
		}
		if !bytes.Equal(gotOOB[:3], oob) {
			t.Error("oob mismatch")
		}
	})
}

func TestReadUnwrittenFails(t *testing.T) {
	run(t, smallConfig(), func(e *sim.Engine, a *Array) {
		_, _, err := a.ReadPage(5)
		if !errors.Is(err, ErrPageNotWritten) {
			t.Fatalf("err=%v", err)
		}
	})
}

func TestProgramTwiceFails(t *testing.T) {
	run(t, smallConfig(), func(e *sim.Engine, a *Array) {
		p := a.BlockPPN(0, 0, 0, 0)
		if err := a.ProgramPage(p, []byte{1}, nil); err != nil {
			t.Fatal(err)
		}
		if err := a.ProgramPage(p, []byte{2}, nil); !errors.Is(err, ErrPageWritten) {
			t.Fatalf("err=%v", err)
		}
	})
}

func TestProgramOrderEnforced(t *testing.T) {
	run(t, smallConfig(), func(e *sim.Engine, a *Array) {
		if err := a.ProgramPage(a.BlockPPN(0, 0, 0, 2), []byte{1}, nil); !errors.Is(err, ErrProgramOrder) {
			t.Fatalf("err=%v", err)
		}
		// Sequential order succeeds.
		for i := 0; i < 3; i++ {
			if err := a.ProgramPage(a.BlockPPN(0, 0, 0, i), []byte{byte(i)}, nil); err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestEraseResetsBlock(t *testing.T) {
	run(t, smallConfig(), func(e *sim.Engine, a *Array) {
		p0 := a.BlockPPN(0, 0, 1, 0)
		if err := a.ProgramPage(p0, []byte{7}, nil); err != nil {
			t.Fatal(err)
		}
		if err := a.EraseBlock(p0); err != nil {
			t.Fatal(err)
		}
		if _, _, err := a.ReadPage(p0); !errors.Is(err, ErrPageNotWritten) {
			t.Fatalf("read after erase: %v", err)
		}
		if a.EraseCount(p0) != 1 {
			t.Fatalf("erase count %d", a.EraseCount(p0))
		}
		// Reprogrammable from page 0.
		if err := a.ProgramPage(p0, []byte{8}, nil); err != nil {
			t.Fatal(err)
		}
	})
}

func TestOutOfRange(t *testing.T) {
	run(t, smallConfig(), func(e *sim.Engine, a *Array) {
		bad := PPN(a.Config().TotalPages())
		if _, _, err := a.ReadPage(bad); !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("err=%v", err)
		}
		if err := a.ProgramPage(bad, nil, nil); !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("err=%v", err)
		}
		if err := a.EraseBlock(bad); !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("err=%v", err)
		}
	})
}

func TestOversizeProgramRejected(t *testing.T) {
	run(t, smallConfig(), func(e *sim.Engine, a *Array) {
		big := make([]byte, a.Config().PageSize+1)
		if err := a.ProgramPage(0, big, nil); err == nil {
			t.Fatal("oversize program accepted")
		}
	})
}

func TestEnduranceLimit(t *testing.T) {
	cfg := smallConfig()
	cfg.EraseEndurance = 3
	run(t, cfg, func(e *sim.Engine, a *Array) {
		p := a.BlockPPN(0, 0, 0, 0)
		for i := 0; i < 3; i++ {
			if err := a.EraseBlock(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.EraseBlock(p); !errors.Is(err, ErrWornOut) {
			t.Fatalf("err=%v", err)
		}
		if err := a.ProgramPage(p, []byte{1}, nil); !errors.Is(err, ErrWornOut) {
			t.Fatalf("program on worn block: %v", err)
		}
	})
}

func TestInjectedEraseFailure(t *testing.T) {
	run(t, smallConfig(), func(e *sim.Engine, a *Array) {
		p := a.BlockPPN(1, 0, 2, 0)
		a.InjectEraseFailure(p)
		if err := a.EraseBlock(p); !errors.Is(err, ErrInjectedFailure) {
			t.Fatalf("err=%v", err)
		}
		// Failure is one-shot.
		if err := a.EraseBlock(p); err != nil {
			t.Fatalf("second erase: %v", err)
		}
	})
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cfg := smallConfig()
	e := sim.NewEngine()
	a := New(e, cfg)
	f := func(raw uint32) bool {
		p := PPN(raw % uint32(cfg.TotalPages()))
		addr := a.Decode(p)
		if addr.Channel < 0 || addr.Channel >= cfg.Channels ||
			addr.Chip < 0 || addr.Chip >= cfg.ChipsPerChannel ||
			addr.Block < 0 || addr.Block >= cfg.BlocksPerChip ||
			addr.Page < 0 || addr.Page >= cfg.PagesPerBlock {
			return false
		}
		return a.Encode(addr) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChipSerializationTiming(t *testing.T) {
	// Two programs to the same chip serialize; to different channels overlap.
	cfg := smallConfig()
	e := sim.NewEngine()
	a := New(e, cfg)
	var sameChip, diffChan time.Duration
	e.Go("same-chip", func() {
		wg := e.NewWaitGroup()
		start := e.Now()
		for i := 0; i < 2; i++ {
			i := i
			wg.Add(1)
			e.Go("w", func() {
				defer wg.Done()
				if err := a.ProgramPage(a.BlockPPN(0, 0, i, 0), []byte{1}, nil); err != nil {
					t.Error(err)
				}
			})
		}
		wg.Wait()
		sameChip = e.Now() - start

		start = e.Now()
		wg2 := e.NewWaitGroup()
		for c := 0; c < 2; c++ {
			c := c
			wg2.Add(1)
			e.Go("w", func() {
				defer wg2.Done()
				if err := a.ProgramPage(a.BlockPPN(c, 0, 2, 0), []byte{1}, nil); err != nil {
					t.Error(err)
				}
			})
		}
		wg2.Wait()
		diffChan = e.Now() - start
	})
	e.Wait()
	if sameChip <= diffChan {
		t.Fatalf("same-chip %v should exceed cross-channel %v", sameChip, diffChan)
	}
	// Cross-channel programs should cost ~one program + one transfer.
	oneOp := cfg.ProgramLatency + cfg.TransferTime(cfg.PageSize+cfg.OOBSize)
	if diffChan > oneOp+time.Microsecond {
		t.Fatalf("cross-channel %v exceeds single op %v", diffChan, oneOp)
	}
}

func TestStatsCount(t *testing.T) {
	run(t, smallConfig(), func(e *sim.Engine, a *Array) {
		p := a.BlockPPN(0, 0, 0, 0)
		_ = a.ProgramPage(p, []byte{1}, nil)
		_, _, _ = a.ReadPage(p)
		_ = a.EraseBlock(p)
		s := a.Stats()
		if s.Programs != 1 || s.Reads != 1 || s.Erases != 1 {
			t.Fatalf("stats=%+v", s)
		}
	})
}
