// Package flash simulates a NAND flash array like the one on the SSD
// prototyping board used by the KAML paper (HPCA 2017): multiple channels,
// several chips per channel, erase blocks of sequentially-programmed pages,
// and a per-page out-of-band (OOB) region.
//
// The simulator enforces real NAND semantics — pages are immutable once
// programmed, pages within a block must be programmed in order, a block must
// be erased before reuse, and each block endures a bounded number of erases —
// and charges realistic virtual time for every operation: chips serve one
// read/program/erase at a time, and all chips on a channel share that
// channel's data bus for transfers.
package flash

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/kaml-ssd/kaml/internal/sim"
)

// Errors returned by array operations.
var (
	ErrOutOfRange      = errors.New("flash: address out of range")
	ErrPageNotWritten  = errors.New("flash: read of unwritten page")
	ErrPageWritten     = errors.New("flash: program of already-written page")
	ErrProgramOrder    = errors.New("flash: pages within a block must be programmed sequentially")
	ErrWornOut         = errors.New("flash: block exceeded erase endurance")
	ErrInjectedFailure = errors.New("flash: injected failure")
	ErrPowerCut        = errors.New("flash: power lost")
)

// Op identifies a flash operation for fault-injection decisions.
type Op uint8

// Operations an Injector may fail.
const (
	OpRead Op = iota
	OpProgram
	OpErase
)

// Verdict is an Injector's decision about one operation.
type Verdict uint8

// Injection verdicts.
const (
	// VerdictOK lets the operation proceed normally.
	VerdictOK Verdict = iota
	// VerdictFail makes the operation fail. A failed program still consumes
	// the page (the cells were stressed; their contents are undefined, which
	// the simulator models as all-zero data and OOB). A failed read or erase
	// leaves the medium untouched.
	VerdictFail
	// VerdictPowerCut powers the array off before the operation takes
	// effect; every subsequent operation fails with ErrPowerCut until
	// PowerOn.
	VerdictPowerCut
	// VerdictPowerCutTorn powers the array off in the middle of a program:
	// the page is consumed with a partial data image and an all-zero OOB —
	// a torn page that recovery must detect and skip. Non-program
	// operations treat it as VerdictPowerCut.
	VerdictPowerCutTorn
)

// Injector decides the fate of individual flash operations; it is how the
// fault-injection subsystem (internal/faultinject) hooks into the array.
// Decide is called with the array's virtual clock so plans can trigger
// power cuts at a chosen time. Implementations must be safe for concurrent
// use: chips operate in parallel.
type Injector interface {
	Decide(op Op, p PPN, now time.Duration) Verdict
}

// Config describes the geometry and timing of a flash array. The defaults
// mirror the paper's board: 16 channels x 4 chips, 8 KB + 256 B pages.
type Config struct {
	Channels        int
	ChipsPerChannel int
	BlocksPerChip   int
	PagesPerBlock   int
	PageSize        int // data bytes per page
	OOBSize         int // out-of-band bytes per page

	ReadLatency    time.Duration // cell array -> chip register
	ProgramLatency time.Duration // chip register -> cell array
	EraseLatency   time.Duration
	ChannelMBps    int // shared per-channel transfer rate, MB/s

	EraseEndurance int // erases before a block becomes unreliable (0 = unlimited)
}

// DefaultConfig returns the geometry and timing used throughout the
// reproduction; see DESIGN.md §5.
func DefaultConfig() Config {
	return Config{
		Channels:        16,
		ChipsPerChannel: 4,
		BlocksPerChip:   64,
		PagesPerBlock:   64,
		PageSize:        8192,
		OOBSize:         256,
		ReadLatency:     70 * time.Microsecond,
		ProgramLatency:  400 * time.Microsecond,
		EraseLatency:    3 * time.Millisecond,
		ChannelMBps:     400,
		EraseEndurance:  10000,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0 || c.ChipsPerChannel <= 0:
		return fmt.Errorf("flash: bad geometry %dx%d", c.Channels, c.ChipsPerChannel)
	case c.BlocksPerChip <= 0 || c.PagesPerBlock <= 0:
		return fmt.Errorf("flash: bad block geometry %d blocks x %d pages", c.BlocksPerChip, c.PagesPerBlock)
	case c.PageSize <= 0 || c.OOBSize < 0:
		return fmt.Errorf("flash: bad page size %d+%d", c.PageSize, c.OOBSize)
	case c.ChannelMBps <= 0:
		return fmt.Errorf("flash: bad channel rate %d", c.ChannelMBps)
	}
	return nil
}

// Chips returns the total chip count.
func (c Config) Chips() int { return c.Channels * c.ChipsPerChannel }

// PagesPerChip returns pages per chip.
func (c Config) PagesPerChip() int { return c.BlocksPerChip * c.PagesPerBlock }

// TotalPages returns the total page count across the array.
func (c Config) TotalPages() int { return c.Chips() * c.PagesPerChip() }

// TransferTime returns how long n bytes occupy a channel's bus.
func (c Config) TransferTime(n int) time.Duration {
	return time.Duration(n) * time.Second / time.Duration(c.ChannelMBps*1_000_000)
}

// PPN is a physical page number: a flat index over the whole array.
// Layout: chip-major, so consecutive PPNs within a block stay on one chip.
type PPN uint32

// InvalidPPN is a sentinel that never addresses a real page.
const InvalidPPN = PPN(^uint32(0))

// Addr is a decoded physical page address.
type Addr struct {
	Channel int
	Chip    int // within channel
	Block   int // within chip
	Page    int // within block
}

// Array is a simulated flash array. All operations charge virtual time on
// the owning sim.Engine and are safe for concurrent use by actors.
type Array struct {
	cfg      Config
	eng      *sim.Engine
	channels []*sim.Mutex // per-channel bus
	chips    []*chipState // flat: channel*ChipsPerChannel + chip

	// powered is false after a (simulated) power cut; every operation fails
	// with ErrPowerCut until PowerOn. The array's contents survive — that is
	// the whole point of crash-recovery testing.
	powered atomic.Bool

	// inj, when set, is consulted before every operation.
	injMu sync.Mutex
	inj   Injector

	// Stats counters; atomic because woken actors may run in parallel.
	reads    atomic.Int64
	programs atomic.Int64
	erases   atomic.Int64
}

type chipState struct {
	mu     *sim.Mutex // serializes ops on this chip
	blocks []blockState
}

type blockState struct {
	// erases and nextPage are atomics: ProgrammedPages and EraseCount are
	// lock-free metadata queries that firmware actors (GC victim scoring)
	// issue while another actor programs the same chip under cs.mu.
	erases      atomic.Int32
	nextPage    atomic.Int32 // next programmable page index; PagesPerBlock when full
	data        [][]byte
	oob         [][]byte
	failedErase bool // error injection: next erase fails
}

// New constructs an array on engine e. Panics on invalid config (programmer
// error, caught at device construction time).
func New(e *sim.Engine, cfg Config) *Array {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	a := &Array{cfg: cfg, eng: e}
	a.powered.Store(true)
	a.channels = make([]*sim.Mutex, cfg.Channels)
	for i := range a.channels {
		a.channels[i] = e.NewMutex(fmt.Sprintf("flash-ch%d", i))
	}
	a.chips = make([]*chipState, cfg.Chips())
	for i := range a.chips {
		blocks := make([]blockState, cfg.BlocksPerChip)
		for b := range blocks {
			blocks[b] = blockState{
				data: make([][]byte, cfg.PagesPerBlock),
				oob:  make([][]byte, cfg.PagesPerBlock),
			}
		}
		a.chips[i] = &chipState{
			mu:     e.NewMutex(fmt.Sprintf("flash-chip%d", i)),
			blocks: blocks,
		}
	}
	return a
}

// Config returns the array's configuration.
func (a *Array) Config() Config { return a.cfg }

// SetInjector installs (or, with nil, removes) a fault injector.
func (a *Array) SetInjector(inj Injector) {
	a.injMu.Lock()
	a.inj = inj
	a.injMu.Unlock()
}

// Powered reports whether the array currently has power.
func (a *Array) Powered() bool { return a.powered.Load() }

// PowerOff simulates an external power cut: every subsequent operation
// fails with ErrPowerCut. Stored pages survive.
func (a *Array) PowerOff() { a.powered.Store(false) }

// PowerOn restores power after a cut (the recovery path calls this before
// scanning the logs).
func (a *Array) PowerOn() { a.powered.Store(true) }

// decide consults the installed injector, applying power-cut verdicts to
// the array's power state.
func (a *Array) decide(op Op, p PPN) Verdict {
	a.injMu.Lock()
	inj := a.inj
	a.injMu.Unlock()
	if inj == nil {
		return VerdictOK
	}
	v := inj.Decide(op, p, a.eng.NowCheap())
	if v == VerdictPowerCut || v == VerdictPowerCutTorn {
		a.powered.Store(false)
	}
	return v
}

// Engine returns the owning simulation engine.
func (a *Array) Engine() *sim.Engine { return a.eng }

// Decode splits a PPN into its physical coordinates.
func (a *Array) Decode(p PPN) Addr {
	ppc := a.cfg.PagesPerChip()
	chip := int(p) / ppc
	rest := int(p) % ppc
	return Addr{
		Channel: chip / a.cfg.ChipsPerChannel,
		Chip:    chip % a.cfg.ChipsPerChannel,
		Block:   rest / a.cfg.PagesPerBlock,
		Page:    rest % a.cfg.PagesPerBlock,
	}
}

// Encode builds a PPN from physical coordinates.
func (a *Array) Encode(addr Addr) PPN {
	chip := addr.Channel*a.cfg.ChipsPerChannel + addr.Chip
	return PPN(chip*a.cfg.PagesPerChip() + addr.Block*a.cfg.PagesPerBlock + addr.Page)
}

// BlockPPN returns the PPN of page `page` of block `block` on the given chip.
func (a *Array) BlockPPN(channel, chip, block, page int) PPN {
	return a.Encode(Addr{Channel: channel, Chip: chip, Block: block, Page: page})
}

func (a *Array) locate(p PPN) (*chipState, *blockState, Addr, error) {
	if int(p) >= a.cfg.TotalPages() {
		return nil, nil, Addr{}, fmt.Errorf("%w: ppn %d", ErrOutOfRange, p)
	}
	addr := a.Decode(p)
	cs := a.chips[addr.Channel*a.cfg.ChipsPerChannel+addr.Chip]
	return cs, &cs.blocks[addr.Block], addr, nil
}

// ReadPage reads a full page (data + OOB). The returned slices alias the
// array's internal storage and MUST be treated as immutable by the caller —
// flash pages never change between program and erase, and an erase replaces
// the backing buffers rather than zeroing them, so the contents stay stable
// for as long as the caller holds them. Returning the internal buffers
// avoids an 8 KB copy per read, the single largest allocation on the
// firmware's hot path.
// Timing: chip busy for ReadLatency, then the channel bus is held while the
// page transfers to the controller.
func (a *Array) ReadPage(p PPN) (data, oob []byte, err error) {
	if !a.powered.Load() {
		return nil, nil, fmt.Errorf("%w: read ppn %d", ErrPowerCut, p)
	}
	cs, bs, addr, err := a.locate(p)
	if err != nil {
		return nil, nil, err
	}
	switch a.decide(OpRead, p) {
	case VerdictFail:
		cs.mu.Lock()
		a.eng.Sleep(a.cfg.ReadLatency) // the failed sensing still took time
		cs.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: read ppn %d", ErrInjectedFailure, p)
	case VerdictPowerCut, VerdictPowerCutTorn:
		return nil, nil, fmt.Errorf("%w: read ppn %d", ErrPowerCut, p)
	}
	cs.mu.Lock()
	if bs.data[addr.Page] == nil {
		cs.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: ppn %d", ErrPageNotWritten, p)
	}
	a.eng.Sleep(a.cfg.ReadLatency)
	data = bs.data[addr.Page]
	oob = bs.oob[addr.Page]
	a.reads.Add(1)
	cs.mu.Unlock()
	a.channels[addr.Channel].Use(a.cfg.TransferTime(a.cfg.PageSize + a.cfg.OOBSize))
	return data, oob, nil
}

// ProgramPage writes a full page. data must be at most PageSize bytes and
// oob at most OOBSize bytes; both are padded to full length internally.
// Timing: the channel bus is held for the transfer, then the chip is busy
// for ProgramLatency.
func (a *Array) ProgramPage(p PPN, data, oob []byte) error {
	if len(data) > a.cfg.PageSize || len(oob) > a.cfg.OOBSize {
		return fmt.Errorf("flash: program size %d+%d exceeds page %d+%d",
			len(data), len(oob), a.cfg.PageSize, a.cfg.OOBSize)
	}
	if !a.powered.Load() {
		return fmt.Errorf("%w: program ppn %d", ErrPowerCut, p)
	}
	cs, bs, addr, err := a.locate(p)
	if err != nil {
		return err
	}
	a.channels[addr.Channel].Use(a.cfg.TransferTime(a.cfg.PageSize + a.cfg.OOBSize))
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if a.cfg.EraseEndurance > 0 && int(bs.erases.Load()) > a.cfg.EraseEndurance {
		return fmt.Errorf("%w: chip %d/%d block %d", ErrWornOut, addr.Channel, addr.Chip, addr.Block)
	}
	if bs.data[addr.Page] != nil {
		return fmt.Errorf("%w: ppn %d", ErrPageWritten, p)
	}
	if addr.Page != int(bs.nextPage.Load()) {
		return fmt.Errorf("%w: block %d expects page %d, got %d",
			ErrProgramOrder, addr.Block, bs.nextPage.Load(), addr.Page)
	}
	switch a.decide(OpProgram, p) {
	case VerdictFail:
		// A program failure still stresses the cells: the page is consumed
		// with undefined (all-zero) contents and the caller must rewrite the
		// payload elsewhere.
		a.eng.Sleep(a.cfg.ProgramLatency)
		bs.data[addr.Page] = make([]byte, a.cfg.PageSize)
		bs.oob[addr.Page] = make([]byte, a.cfg.OOBSize)
		bs.nextPage.Add(1)
		return fmt.Errorf("%w: program ppn %d", ErrInjectedFailure, p)
	case VerdictPowerCut:
		// Power died before the cells committed; the page stays unwritten.
		return fmt.Errorf("%w: program ppn %d", ErrPowerCut, p)
	case VerdictPowerCutTorn:
		// Power died mid-program: a torn page — partial data, no OOB.
		stored := make([]byte, a.cfg.PageSize)
		copy(stored, data[:len(data)/2])
		bs.data[addr.Page] = stored
		bs.oob[addr.Page] = make([]byte, a.cfg.OOBSize)
		bs.nextPage.Add(1)
		return fmt.Errorf("%w: torn program ppn %d", ErrPowerCut, p)
	}
	a.eng.Sleep(a.cfg.ProgramLatency)
	stored := make([]byte, a.cfg.PageSize)
	copy(stored, data)
	soob := make([]byte, a.cfg.OOBSize)
	copy(soob, oob)
	bs.data[addr.Page] = stored
	bs.oob[addr.Page] = soob
	bs.nextPage.Add(1)
	a.programs.Add(1)
	return nil
}

// EraseBlock erases the block containing PPN p (its page component is
// ignored). Timing: chip busy for EraseLatency.
func (a *Array) EraseBlock(p PPN) error {
	if !a.powered.Load() {
		return fmt.Errorf("%w: erase ppn %d", ErrPowerCut, p)
	}
	cs, bs, addr, err := a.locate(p)
	if err != nil {
		return err
	}
	switch a.decide(OpErase, p) {
	case VerdictFail:
		cs.mu.Lock()
		a.eng.Sleep(a.cfg.EraseLatency)
		cs.mu.Unlock()
		return fmt.Errorf("%w: erase of chip %d/%d block %d", ErrInjectedFailure, addr.Channel, addr.Chip, addr.Block)
	case VerdictPowerCut, VerdictPowerCutTorn:
		return fmt.Errorf("%w: erase ppn %d", ErrPowerCut, p)
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	a.eng.Sleep(a.cfg.EraseLatency)
	if bs.failedErase {
		bs.failedErase = false
		return fmt.Errorf("%w: erase of chip %d/%d block %d", ErrInjectedFailure, addr.Channel, addr.Chip, addr.Block)
	}
	bs.erases.Add(1)
	if a.cfg.EraseEndurance > 0 && int(bs.erases.Load()) > a.cfg.EraseEndurance {
		return fmt.Errorf("%w: chip %d/%d block %d", ErrWornOut, addr.Channel, addr.Chip, addr.Block)
	}
	// Replace (never zero) the page buffers: readers that fetched a slice
	// from ReadPage before the erase keep a stable view of the old contents.
	for i := range bs.data {
		bs.data[i] = nil
		bs.oob[i] = nil
	}
	bs.nextPage.Store(0)
	a.erases.Add(1)
	return nil
}

// ProgrammedPages returns how many pages of the block containing p have
// been programmed since the last erase (metadata query; no timing cost).
// Recovery code uses it to re-synchronize append points after a crash.
// Lock-free: safe to call while other actors operate on the chip.
func (a *Array) ProgrammedPages(p PPN) int {
	_, bs, _, err := a.locate(p)
	if err != nil {
		return -1
	}
	return int(bs.nextPage.Load())
}

// EraseCount returns how many times the block containing p has been erased.
// Lock-free: safe to call while other actors operate on the chip.
func (a *Array) EraseCount(p PPN) int {
	_, bs, _, err := a.locate(p)
	if err != nil {
		return -1
	}
	return int(bs.erases.Load())
}

// InjectEraseFailure makes the next erase of the block containing p fail,
// for fault-injection tests.
func (a *Array) InjectEraseFailure(p PPN) {
	_, bs, _, err := a.locate(p)
	if err == nil {
		bs.failedErase = true
	}
}

// Stats reports cumulative operation counts.
type Stats struct {
	Reads, Programs, Erases int64
}

// Stats returns a snapshot of the array's counters.
func (a *Array) Stats() Stats {
	return Stats{Reads: a.reads.Load(), Programs: a.programs.Load(), Erases: a.erases.Load()}
}
