// Package record implements KAML's on-flash record format (paper §IV-B,
// Fig. 4): variable-sized key-value records packed into fixed-sized flash
// pages. A page is divided into fixed-size chunks (64 chunks of 128 B for an
// 8 KB page); each record occupies a whole number of consecutive chunks, the
// first record starts at chunk 0, and records are packed with no gaps. An
// 8-byte bitmap stored in the page's OOB region has bit i set iff chunk i is
// the last chunk of a record, which lets the garbage collector re-parse any
// page without consulting the index.
package record

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// HeaderSize is the per-record header: namespace (4 B), key (8 B),
// sequence (8 B), value length (4 B). The sequence number is the record's
// global modification order, assigned when the write is staged in NVRAM;
// crash recovery re-parses the logs and keeps, per key, the version with
// the highest sequence (newest-sequence-wins). GC relocation preserves it,
// so ordering survives any number of moves.
const HeaderSize = 24

// DefaultChunkSize matches the paper: 8192-byte pages / 64 chunks.
const DefaultChunkSize = 128

// Record is one key-value pair as stored on flash.
type Record struct {
	Namespace uint32
	Key       uint64
	Seq       uint64 // global modification order (see HeaderSize)
	Value     []byte
}

// EncodedSize returns the record's size in bytes including the header.
func (r Record) EncodedSize() int { return HeaderSize + len(r.Value) }

// Chunks returns how many chunks of the given size the record occupies.
func (r Record) Chunks(chunkSize int) int {
	return (r.EncodedSize() + chunkSize - 1) / chunkSize
}

// Marshal appends the record's wire form to dst and returns the result.
func (r Record) Marshal(dst []byte) []byte {
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], r.Namespace)
	binary.LittleEndian.PutUint64(hdr[4:12], r.Key)
	binary.LittleEndian.PutUint64(hdr[12:20], r.Seq)
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(len(r.Value)))
	dst = append(dst, hdr[:]...)
	return append(dst, r.Value...)
}

// Unmarshal decodes a record that starts at the beginning of b.
func Unmarshal(b []byte) (Record, error) {
	if len(b) < HeaderSize {
		return Record{}, errors.New("record: short header")
	}
	vlen := binary.LittleEndian.Uint32(b[20:24])
	if int(vlen) > len(b)-HeaderSize {
		return Record{}, fmt.Errorf("record: value length %d exceeds buffer %d", vlen, len(b)-HeaderSize)
	}
	return Record{
		Namespace: binary.LittleEndian.Uint32(b[0:4]),
		Key:       binary.LittleEndian.Uint64(b[4:12]),
		Seq:       binary.LittleEndian.Uint64(b[12:20]),
		Value:     append([]byte(nil), b[HeaderSize:HeaderSize+int(vlen)]...),
	}, nil
}

// Packer accumulates records into one flash page image.
type Packer struct {
	pageSize  int
	chunkSize int
	chunks    int // total chunks per page
	used      int // chunks consumed so far
	data      []byte
	bitmap    uint64
	count     int
}

// NewPacker returns a packer for pages of pageSize bytes split into
// pageSize/chunkSize chunks. pageSize must be a multiple of chunkSize and
// produce at most 64 chunks (the OOB bitmap is 8 bytes).
func NewPacker(pageSize, chunkSize int) *Packer {
	if chunkSize <= 0 || pageSize%chunkSize != 0 {
		panic(fmt.Sprintf("record: page %d not a multiple of chunk %d", pageSize, chunkSize))
	}
	n := pageSize / chunkSize
	if n > 64 {
		panic(fmt.Sprintf("record: %d chunks exceed 64-bit bitmap", n))
	}
	return &Packer{
		pageSize:  pageSize,
		chunkSize: chunkSize,
		chunks:    n,
		data:      make([]byte, 0, pageSize),
	}
}

// Fits reports whether a record of encodedSize bytes still fits in the page.
func (p *Packer) Fits(encodedSize int) bool {
	need := (encodedSize + p.chunkSize - 1) / p.chunkSize
	return p.used+need <= p.chunks
}

// FreeChunks returns how many chunks remain unused.
func (p *Packer) FreeChunks() int { return p.chunks - p.used }

// Count returns how many records have been added.
func (p *Packer) Count() int { return p.count }

// Empty reports whether no records have been added.
func (p *Packer) Empty() bool { return p.count == 0 }

// Add appends a record and returns the index of its first chunk.
// It panics if the record does not fit; callers must check Fits first.
func (p *Packer) Add(r Record) int {
	size := r.EncodedSize()
	need := (size + p.chunkSize - 1) / p.chunkSize
	if p.used+need > p.chunks {
		panic("record: Add without Fits")
	}
	start := p.used
	p.data = r.Marshal(p.data)
	// Pad to the chunk boundary so the next record starts on a fresh chunk.
	if pad := (start+need)*p.chunkSize - len(p.data); pad > 0 {
		p.data = append(p.data, make([]byte, pad)...)
	}
	p.used += need
	p.bitmap |= 1 << uint(p.used-1) // mark the record's last chunk
	p.count++
	return start
}

// Finish returns the page image (padded to the full page size) and the
// 8-byte OOB bitmap, then resets the packer for the next page.
func (p *Packer) Finish() (data []byte, oob []byte) {
	data = p.data
	if len(data) < p.pageSize {
		data = append(data, make([]byte, p.pageSize-len(data))...)
	}
	oob = make([]byte, 8)
	binary.LittleEndian.PutUint64(oob, p.bitmap)
	p.data = make([]byte, 0, p.pageSize)
	p.bitmap = 0
	p.used = 0
	p.count = 0
	return data, oob
}

// Placed describes a parsed record and where it sat in the page.
type Placed struct {
	Record     Record
	StartChunk int
	NumChunks  int
}

// Parse decodes a packed page back into its records using the OOB bitmap,
// exactly as the firmware's GC does (paper §IV-E).
func Parse(data, oob []byte, chunkSize int) ([]Placed, error) {
	if len(oob) < 8 {
		return nil, errors.New("record: OOB too short for bitmap")
	}
	bitmap := binary.LittleEndian.Uint64(oob[:8])
	chunks := len(data) / chunkSize
	var out []Placed
	start := 0
	for i := 0; i < chunks && i < 64; i++ {
		if bitmap&(1<<uint(i)) == 0 {
			continue
		}
		lo, hi := start*chunkSize, (i+1)*chunkSize
		if hi > len(data) {
			return nil, fmt.Errorf("record: bitmap points past page (%d > %d)", hi, len(data))
		}
		r, err := Unmarshal(data[lo:hi])
		if err != nil {
			return nil, fmt.Errorf("record: chunk %d..%d: %w", start, i, err)
		}
		out = append(out, Placed{Record: r, StartChunk: start, NumChunks: i + 1 - start})
		start = i + 1
	}
	return out, nil
}

// At decodes the single record starting at startChunk in the page, used by
// Get when the index stores a (PPN, chunk) location.
func At(data []byte, startChunk, chunkSize int) (Record, error) {
	lo := startChunk * chunkSize
	if lo >= len(data) {
		return Record{}, fmt.Errorf("record: chunk %d out of page", startChunk)
	}
	return Unmarshal(data[lo:])
}
