package record

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	f := func(ns uint32, key, seq uint64, val []byte) bool {
		r := Record{Namespace: ns, Key: key, Seq: seq, Value: val}
		b := r.Marshal(nil)
		got, err := Unmarshal(b)
		if err != nil {
			return false
		}
		return got.Namespace == ns && got.Key == key && got.Seq == seq && bytes.Equal(got.Value, val)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalShort(t *testing.T) {
	if _, err := Unmarshal(make([]byte, HeaderSize-1)); err == nil {
		t.Fatal("short header accepted")
	}
	r := Record{Value: make([]byte, 100)}
	b := r.Marshal(nil)
	if _, err := Unmarshal(b[:HeaderSize+50]); err == nil {
		t.Fatal("truncated value accepted")
	}
}

func TestChunksRounding(t *testing.T) {
	cases := []struct {
		valueLen, chunks int
	}{
		{0, 1},                // header alone fits one chunk
		{128 - HeaderSize, 1}, // exactly one chunk
		{128 - HeaderSize + 1, 2},
		{512, (512 + HeaderSize + 127) / 128},
	}
	for _, c := range cases {
		r := Record{Value: make([]byte, c.valueLen)}
		if got := r.Chunks(128); got != c.chunks {
			t.Errorf("valueLen=%d chunks=%d want %d", c.valueLen, got, c.chunks)
		}
	}
}

func TestPackerSingleRecord(t *testing.T) {
	p := NewPacker(8192, 128)
	r := Record{Namespace: 1, Key: 42, Value: []byte("hello")}
	start := p.Add(r)
	if start != 0 {
		t.Fatalf("start=%d", start)
	}
	data, oob := p.Finish()
	if len(data) != 8192 {
		t.Fatalf("page len %d", len(data))
	}
	placed, err := Parse(data, oob, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != 1 || placed[0].Record.Key != 42 || string(placed[0].Record.Value) != "hello" {
		t.Fatalf("placed=%+v", placed)
	}
}

func TestPackerPaperFigure4(t *testing.T) {
	// Paper Fig. 4: record A occupies chunks 0-1 of P0, record B chunks 2-4,
	// record C starts a new page at chunk 0.
	p := NewPacker(8192, 128)
	a := Record{Key: 1, Value: make([]byte, 2*128-HeaderSize)} // 2 chunks
	b := Record{Key: 2, Value: make([]byte, 3*128-HeaderSize)} // 3 chunks
	if s := p.Add(a); s != 0 {
		t.Fatalf("A start=%d", s)
	}
	if s := p.Add(b); s != 2 {
		t.Fatalf("B start=%d", s)
	}
	data, oob := p.Finish()
	placed, err := Parse(data, oob, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != 2 {
		t.Fatalf("%d records", len(placed))
	}
	if placed[0].StartChunk != 0 || placed[0].NumChunks != 2 {
		t.Errorf("A: %+v", placed[0])
	}
	if placed[1].StartChunk != 2 || placed[1].NumChunks != 3 {
		t.Errorf("B: %+v", placed[1])
	}
	// Bitmap bits 1 and 4 set, matching "00..010010" in the figure.
	if oob[0] != 0b00010010 {
		t.Errorf("bitmap byte 0 = %08b", oob[0])
	}
}

func TestPackerFitsBoundary(t *testing.T) {
	p := NewPacker(1024, 128) // 8 chunks
	big := Record{Value: make([]byte, 8*128-HeaderSize)}
	if !p.Fits(big.EncodedSize()) {
		t.Fatal("exact-fit record rejected")
	}
	p.Add(big)
	if p.Fits(1) {
		t.Fatal("full page accepts more")
	}
	if p.FreeChunks() != 0 {
		t.Fatalf("free=%d", p.FreeChunks())
	}
}

func TestPackerResetAfterFinish(t *testing.T) {
	p := NewPacker(1024, 128)
	p.Add(Record{Key: 1, Value: []byte("x")})
	p.Finish()
	if !p.Empty() || p.FreeChunks() != 8 {
		t.Fatal("packer not reset")
	}
	start := p.Add(Record{Key: 2, Value: []byte("y")})
	if start != 0 {
		t.Fatalf("start=%d after reset", start)
	}
}

func TestAtMatchesParse(t *testing.T) {
	p := NewPacker(8192, 128)
	var starts []int
	var recs []Record
	rng := rand.New(rand.NewSource(7))
	for i := 0; ; i++ {
		val := make([]byte, rng.Intn(700))
		rng.Read(val)
		r := Record{Namespace: uint32(i % 3), Key: uint64(i), Value: val}
		if !p.Fits(r.EncodedSize()) {
			break
		}
		starts = append(starts, p.Add(r))
		recs = append(recs, r)
	}
	data, _ := p.Finish()
	for i, s := range starts {
		got, err := At(data, s, 128)
		if err != nil {
			t.Fatal(err)
		}
		if got.Key != recs[i].Key || !bytes.Equal(got.Value, recs[i].Value) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestQuickPackParseRoundTrip(t *testing.T) {
	// Property: any sequence of records packed into pages parses back
	// exactly, in order, from (data, oob) alone.
	f := func(sizes []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewPacker(8192, 128)
		var want []Record
		for i, sz := range sizes {
			val := make([]byte, int(sz)%4000)
			rng.Read(val)
			r := Record{Namespace: uint32(i), Key: rng.Uint64(), Value: val}
			if !p.Fits(r.EncodedSize()) {
				break
			}
			p.Add(r)
			want = append(want, r)
		}
		data, oob := p.Finish()
		placed, err := Parse(data, oob, 128)
		if err != nil || len(placed) != len(want) {
			return false
		}
		for i := range want {
			g := placed[i].Record
			if g.Namespace != want[i].Namespace || g.Key != want[i].Key || !bytes.Equal(g.Value, want[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParseBadOOB(t *testing.T) {
	if _, err := Parse(make([]byte, 1024), []byte{1, 2}, 128); err == nil {
		t.Fatal("short OOB accepted")
	}
}
