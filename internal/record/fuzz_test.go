package record

import (
	"bytes"
	"testing"
)

// FuzzRecordParse fuzzes the on-flash page parser (the GC's view of a page:
// raw data + OOB bitmap, paper §IV-E). Parse over arbitrary inputs must
// never panic and never read out of bounds; whatever it accepts must be
// internally consistent: records sit where the bitmap says, decode again
// via At, and survive a Marshal/Unmarshal round trip.
func FuzzRecordParse(f *testing.F) {
	// Seed with a genuine two-record page at the default geometry.
	p := NewPacker(1024, DefaultChunkSize)
	p.Add(Record{Namespace: 1, Key: 2, Seq: 3, Value: []byte("hi")})
	p.Add(Record{Namespace: 9, Key: 1 << 40, Seq: 77, Value: bytes.Repeat([]byte{0xab}, 200)})
	data, oob := p.Finish()
	f.Add(data, oob, uint8(0))
	f.Add([]byte{}, []byte{}, uint8(1))
	f.Add(make([]byte, 64), []byte{0xff, 0, 0, 0, 0, 0, 0, 0}, uint8(2))

	f.Fuzz(func(t *testing.T, data, oob []byte, chunkSel uint8) {
		chunkSize := 16 << (chunkSel % 4) // 16, 32, 64, 128
		placed, err := Parse(data, oob, chunkSize)
		if err != nil {
			return
		}
		prevEnd := 0
		for _, pl := range placed {
			if pl.StartChunk < prevEnd || pl.NumChunks < 1 {
				t.Fatalf("bad placement: start=%d chunks=%d after end=%d",
					pl.StartChunk, pl.NumChunks, prevEnd)
			}
			prevEnd = pl.StartChunk + pl.NumChunks
			if prevEnd*chunkSize > len(data) {
				t.Fatalf("record extends past page: end chunk %d, page %d bytes", prevEnd, len(data))
			}
			if pl.Record.EncodedSize() > pl.NumChunks*chunkSize {
				t.Fatalf("record of %d bytes reported in %d chunks of %d",
					pl.Record.EncodedSize(), pl.NumChunks, chunkSize)
			}
			// The same record must decode via the Get path.
			at, err := At(data, pl.StartChunk, chunkSize)
			if err != nil {
				t.Fatalf("At(%d) rejected a record Parse accepted: %v", pl.StartChunk, err)
			}
			if at.Namespace != pl.Record.Namespace || at.Key != pl.Record.Key ||
				at.Seq != pl.Record.Seq || !bytes.Equal(at.Value, pl.Record.Value) {
				t.Fatalf("At(%d) decoded a different record than Parse", pl.StartChunk)
			}
			// And survive re-encoding.
			round, err := Unmarshal(pl.Record.Marshal(nil))
			if err != nil {
				t.Fatalf("re-unmarshal: %v", err)
			}
			if round.Namespace != pl.Record.Namespace || round.Key != pl.Record.Key ||
				round.Seq != pl.Record.Seq || !bytes.Equal(round.Value, pl.Record.Value) {
				t.Fatal("Marshal/Unmarshal round trip changed the record")
			}
		}
	})
}
