// Package shoremt is the baseline storage engine the paper compares KAML
// against: a Shore-MT-style engine with ARIES write-ahead logging, a page
// buffer pool, slotted heap files, B+tree indexes, two-phase locking
// (record- or page-granular), and background checkpointing — all running on
// the conventional block SSD (internal/ftl via internal/blockdev).
//
// The engine deliberately has the three structural costs §V-D.1 attributes
// to conventional engines:
//
//  1. Centralized synchronous logging — every commit forces the shared log
//     while holding the global log mutex.
//  2. Checkpointing copies dirty data in the background, interfering with
//     foreground transactions (on top of the SSD's own GC: "double GC").
//  3. Extra indirection — key -> B+tree -> RID -> page -> LBA -> flash,
//     versus KAML's key -> flash.
package shoremt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"github.com/kaml-ssd/kaml/internal/blockdev"
	"github.com/kaml-ssd/kaml/internal/btree"
	"github.com/kaml-ssd/kaml/internal/bufferpool"
	"github.com/kaml-ssd/kaml/internal/lockmgr"
	"github.com/kaml-ssd/kaml/internal/sim"
	"github.com/kaml-ssd/kaml/internal/storage"
	"github.com/kaml-ssd/kaml/internal/wal"
)

// masterPage is the device page holding the master record (last checkpoint
// LSN); the WAL region follows it, then the data region.
const masterPage = 0

// Config tunes the engine.
type Config struct {
	PoolFrames      int           // buffer pool size in pages
	LogPages        int           // WAL region length
	RecordsPerLock  int           // 1 = record locks; >1 emulates coarse/page locks
	CheckpointEvery time.Duration // 0 disables the background checkpointer
	// HostOpCost is host CPU per transactional operation; higher than the
	// KAML caching layer's because of the extra layers (B+tree descent,
	// buffer-pool bookkeeping, slotted-page access) — §V-D.1's "extra
	// layers of indirection".
	HostOpCost time.Duration
	// GroupCommit enables Aether-style consolidated log flushes (the
	// tuned-Shore-MT configuration; see wal.Config.GroupCommit).
	GroupCommit bool
}

// DefaultConfig sizes the engine for tests and benchmarks.
func DefaultConfig() Config {
	return Config{
		PoolFrames:      256,
		LogPages:        128,
		RecordsPerLock:  1,
		CheckpointEvery: 50 * time.Millisecond,
		HostOpCost:      18 * time.Microsecond,
	}
}

// Engine implements storage.Engine.
type Engine struct {
	cfg  Config
	eng  *sim.Engine
	dev  *blockdev.Device
	log  *wal.Log
	pool *bufferpool.Pool
	lm   *lockmgr.Manager

	mu        *sim.Mutex // catalog, page allocator, txn table
	tables    map[uint32]*table
	nextTable uint32
	nextPage  int
	txSeq     uint64
	active    map[uint64]*Txn // for checkpointing and recovery bookkeeping

	closed  bool
	stopped *sim.WaitGroup

	commits, aborts int64
}

type table struct {
	id    uint32
	name  string
	mu    *sim.Mutex  // index latch
	index *btree.Tree // key -> RID.Pack()
	pages []int       // heap pages owned by the table, in allocation order
	fill  int         // current insertion page (-1 = allocate on demand)
}

var _ storage.Engine = (*Engine)(nil)

// New builds an engine on dev. The WAL occupies pages [1, 1+LogPages); the
// data region follows.
func New(dev *blockdev.Device, eng *sim.Engine, cfg Config) *Engine {
	if cfg.PoolFrames <= 0 {
		cfg.PoolFrames = 64
	}
	if cfg.LogPages < 2 {
		cfg.LogPages = 2
	}
	if cfg.RecordsPerLock < 1 {
		cfg.RecordsPerLock = 1
	}
	e := &Engine{
		cfg:       cfg,
		eng:       eng,
		dev:       dev,
		tables:    make(map[uint32]*table),
		nextTable: 1,
		nextPage:  1 + cfg.LogPages,
		active:    make(map[uint64]*Txn),
	}
	e.mu = eng.NewMutex("shoremt")
	e.log = wal.New(dev, eng, wal.Config{StartPage: 1, NumPages: cfg.LogPages, GroupCommit: cfg.GroupCommit})
	e.pool = bufferpool.New(dev, eng, cfg.PoolFrames, func(lsn uint64) error {
		return e.log.Force(wal.LSN(lsn))
	})
	e.lm = lockmgr.New(eng, cfg.RecordsPerLock)
	e.stopped = eng.NewWaitGroup()
	if cfg.CheckpointEvery > 0 {
		e.stopped.Add(1)
		eng.Go("shoremt-ckpt", e.checkpointLoop)
	}
	return e
}

// Log exposes the WAL (stats, tests).
func (e *Engine) Log() *wal.Log { return e.log }

// Pool exposes the buffer pool (stats, tests).
func (e *Engine) Pool() *bufferpool.Pool { return e.pool }

// Device exposes the block device (stats, tests).
func (e *Engine) Device() *blockdev.Device { return e.dev }

// Commits returns the number of committed transactions.
func (e *Engine) Commits() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.commits
}

// CreateTable implements storage.Engine. The creation is logged and
// immediately durable so recovery can rebuild the catalog.
func (e *Engine) CreateTable(name string, hint storage.TableHint) (uint32, error) {
	e.mu.Lock()
	id := e.nextTable
	e.nextTable++
	t := &table{
		id:    id,
		name:  name,
		mu:    e.eng.NewMutex(fmt.Sprintf("tbl-%d", id)),
		index: btree.New(),
		fill:  -1,
	}
	e.tables[id] = t
	e.mu.Unlock()
	rec := &wal.Record{Type: wal.TypeCheckpoint, Payload: e.catalogBlob()}
	lsn, err := e.log.Append(rec)
	if err != nil {
		return 0, err
	}
	if err := e.log.Force(lsn); err != nil {
		return 0, err
	}
	e.writeMaster(lsn)
	return id, nil
}

// Close flushes and stops background actors.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.stopped.Wait()
	_, _ = e.pool.FlushAll()
	e.dev.Close()
}

// allocPage reserves a fresh data page for a table. Caller holds t.mu.
func (e *Engine) allocPage(t *table) (int, error) {
	e.mu.Lock()
	pg := e.nextPage
	if pg >= e.dev.Pages() {
		e.mu.Unlock()
		return 0, errors.New("shoremt: device full")
	}
	e.nextPage++
	t.pages = append(t.pages, pg)
	e.mu.Unlock()
	f, err := e.pool.NewPage(pg)
	if err != nil {
		return 0, err
	}
	e.pool.Unpin(f)
	return pg, nil
}

// encodeRow prefixes the key so recovery can rebuild indexes by scanning
// heap pages.
func encodeRow(key uint64, value []byte) []byte {
	out := make([]byte, 8+len(value))
	binary.LittleEndian.PutUint64(out, key)
	copy(out[8:], value)
	return out
}

func decodeRow(row []byte) (uint64, []byte, error) {
	if len(row) < 8 {
		return 0, nil, errors.New("shoremt: short row")
	}
	return binary.LittleEndian.Uint64(row), row[8:], nil
}

// checkpointLoop periodically flushes dirty pages, writes a checkpoint
// record with the catalog and active-transaction table, updates the master
// record, and truncates the log. This background copying is the
// "checkpointing ... can interfere with foreground activity" effect.
func (e *Engine) checkpointLoop() {
	defer e.stopped.Done()
	for {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return
		}
		e.mu.Unlock()
		e.eng.Sleep(e.cfg.CheckpointEvery)
		if err := e.Checkpoint(); err != nil {
			// Log pressure or device trouble: retry next round.
			continue
		}
	}
}

// Checkpoint performs one fuzzy checkpoint.
func (e *Engine) Checkpoint() error {
	minRecLSN, err := e.pool.FlushAll()
	if err != nil {
		return err
	}
	e.mu.Lock()
	minTxnLSN := wal.LSN(^uint64(0))
	for _, tx := range e.active {
		if tx.firstLSN != wal.NilLSN && tx.firstLSN < minTxnLSN {
			minTxnLSN = tx.firstLSN
		}
	}
	blob := e.catalogBlobLocked()
	e.mu.Unlock()

	rec := &wal.Record{Type: wal.TypeCheckpoint, Payload: blob}
	lsn, err := e.log.Append(rec)
	if err != nil {
		return err
	}
	if err := e.log.Force(lsn); err != nil {
		return err
	}
	e.writeMaster(lsn)

	// The log below min(checkpoint, oldest active txn, oldest dirty page)
	// is no longer needed.
	horizon := lsn
	if minTxnLSN < horizon {
		horizon = minTxnLSN
	}
	if wal.LSN(minRecLSN) < horizon {
		horizon = wal.LSN(minRecLSN)
	}
	e.log.Truncate(horizon)
	return nil
}

// writeMaster stores the latest checkpoint LSN in the master page.
func (e *Engine) writeMaster(lsn wal.LSN) {
	buf := make([]byte, blockdev.PageSize)
	binary.LittleEndian.PutUint64(buf[0:8], 0x4B414D4C4D535452) // "KAMLMSTR"
	binary.LittleEndian.PutUint64(buf[8:16], uint64(lsn))
	_ = e.dev.WritePage(masterPage, buf)
	e.dev.Flush()
}

// readMaster returns the checkpoint LSN from the master page, or ok=false
// for a virgin device.
func readMaster(dev *blockdev.Device) (wal.LSN, bool) {
	buf := make([]byte, blockdev.PageSize)
	if err := dev.ReadPage(masterPage, buf); err != nil {
		return 0, false
	}
	if binary.LittleEndian.Uint64(buf[0:8]) != 0x4B414D4C4D535452 {
		return 0, false
	}
	return wal.LSN(binary.LittleEndian.Uint64(buf[8:16])), true
}

// catalogBlob serializes the catalog + txn table (see catalogBlobLocked).
func (e *Engine) catalogBlob() []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.catalogBlobLocked()
}

// catalogBlobLocked layout:
//
//	u32 nextTable | u64 nextPage | u64 txSeq
//	u32 numTables { u32 id | u16 nameLen | name | u32 numPages | u64 pages... }
//	u32 numActive { u64 txid | u64 lastLSN | u64 firstLSN }
func (e *Engine) catalogBlobLocked() []byte {
	var out []byte
	var tmp [8]byte
	w32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		out = append(out, tmp[:4]...)
	}
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:8], v)
		out = append(out, tmp[:8]...)
	}
	w32(e.nextTable)
	w64(uint64(e.nextPage))
	w64(e.txSeq)
	w32(uint32(len(e.tables)))
	for _, t := range e.tables {
		w32(t.id)
		binary.LittleEndian.PutUint16(tmp[:2], uint16(len(t.name)))
		out = append(out, tmp[:2]...)
		out = append(out, t.name...)
		w32(uint32(len(t.pages)))
		for _, p := range t.pages {
			w64(uint64(p))
		}
	}
	w32(uint32(len(e.active)))
	for _, tx := range e.active {
		w64(tx.id)
		w64(uint64(tx.lastLSN))
		w64(uint64(tx.firstLSN))
	}
	return out
}
