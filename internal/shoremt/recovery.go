package shoremt

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/kaml-ssd/kaml/internal/blockdev"
	"github.com/kaml-ssd/kaml/internal/btree"
	"github.com/kaml-ssd/kaml/internal/bufferpool"
	"github.com/kaml-ssd/kaml/internal/heapfile"
	"github.com/kaml-ssd/kaml/internal/lockmgr"
	"github.com/kaml-ssd/kaml/internal/sim"
	"github.com/kaml-ssd/kaml/internal/wal"
)

// Crash simulates a host power failure: the buffer pool's volatile contents
// vanish; the device (whose write buffer is battery-backed) and the durable
// portion of the log survive. The engine becomes unusable; recover with
// Recover over the same device.
func (e *Engine) Crash() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.stopped.Wait()
	e.pool.DropAll()
	// Note: the WAL's volatile tail page is also lost; only records below
	// FlushedLSN are recoverable, exactly as on real hardware.
}

// Recover runs ARIES restart over a device that hosted a shoremt engine:
// analysis from the last checkpoint, redo of all logged actions whose
// effects are missing from pages, and undo of loser transactions with
// CLRs. Indexes are rebuilt by scanning heap pages (a documented
// simplification: Shore-MT logs index operations; here rows carry their
// keys, so a scan reproduces the same trees).
func Recover(dev *blockdev.Device, eng *sim.Engine, cfg Config) (*Engine, error) {
	if cfg.LogPages < 2 {
		return nil, errors.New("shoremt: bad log config")
	}
	e := &Engine{
		cfg:       cfg,
		eng:       eng,
		dev:       dev,
		tables:    make(map[uint32]*table),
		nextTable: 1,
		nextPage:  1 + cfg.LogPages,
		active:    make(map[uint64]*Txn),
	}
	e.mu = eng.NewMutex("shoremt")
	e.log = wal.New(dev, eng, wal.Config{StartPage: 1, NumPages: cfg.LogPages, GroupCommit: cfg.GroupCommit})
	e.pool = bufferpool.New(dev, eng, cfg.PoolFrames, func(lsn uint64) error {
		return e.log.Force(wal.LSN(lsn))
	})
	e.lm = lockmgr.New(eng, cfg.RecordsPerLock)
	e.stopped = eng.NewWaitGroup()

	ckptLSN, ok := readMaster(dev)
	if !ok {
		// Virgin device: nothing to recover.
		e.startBackground()
		return e, nil
	}

	// Reconstruct the durable log extent. The log object is fresh, so teach
	// it the on-device state by scanning from the checkpoint.
	if err := e.log.Adopt(ckptLSN); err != nil {
		return nil, fmt.Errorf("shoremt: adopt log: %w", err)
	}

	// --- Analysis ---
	ckptRec, err := e.log.ReadAt(ckptLSN)
	if err != nil || ckptRec.Type != wal.TypeCheckpoint {
		return nil, fmt.Errorf("shoremt: bad checkpoint at %d: %v", ckptLSN, err)
	}
	losers, err := e.analyze(ckptRec)
	if err != nil {
		return nil, err
	}

	// --- Redo ---
	if err := e.redo(ckptLSN); err != nil {
		return nil, err
	}

	// --- Undo ---
	if err := e.undoLosers(losers); err != nil {
		return nil, err
	}

	// Rebuild indexes and fill pages from the heap pages.
	if err := e.rebuildIndexes(); err != nil {
		return nil, err
	}
	e.startBackground()
	return e, nil
}

func (e *Engine) startBackground() {
	if e.cfg.CheckpointEvery > 0 {
		e.stopped.Add(1)
		e.eng.Go("shoremt-ckpt", e.checkpointLoop)
	}
}

// loserTxn tracks an uncommitted transaction found during analysis.
type loserTxn struct {
	id      uint64
	lastLSN wal.LSN
}

// analyze restores the catalog from the checkpoint payload and scans
// forward to find transactions without a COMMIT/ABORT-END.
func (e *Engine) analyze(ckpt wal.Record) (map[uint64]*loserTxn, error) {
	if err := e.loadCatalog(ckpt.Payload); err != nil {
		return nil, err
	}
	losers := make(map[uint64]*loserTxn)
	// Seed with transactions active at checkpoint time.
	for _, a := range catalogActive(ckpt.Payload) {
		losers[a.id] = &loserTxn{id: a.id, lastLSN: a.lastLSN}
	}
	err := e.log.Iterate(ckpt.LSN, func(r wal.Record) bool {
		switch r.Type {
		case wal.TypeUpdate, wal.TypeInsert, wal.TypeCLR:
			lt := losers[r.TxnID]
			if lt == nil {
				lt = &loserTxn{id: r.TxnID}
				losers[r.TxnID] = lt
			}
			lt.lastLSN = r.LSN
			// Track page allocation beyond the checkpoint.
			rid := heapfile.UnpackRID(r.RID)
			e.notePage(r.Table, int(rid.Page))
			if r.TxnID >= e.txSeq {
				e.txSeq = r.TxnID + 1
			}
		case wal.TypeCommit, wal.TypeAbort:
			delete(losers, r.TxnID)
			if r.TxnID >= e.txSeq {
				e.txSeq = r.TxnID + 1
			}
		case wal.TypeCheckpoint:
			// A later checkpoint (e.g., CreateTable) refreshes the catalog
			// but we keep scanning from the master checkpoint for txns.
			_ = e.loadCatalogTablesOnly(r.Payload)
		}
		return true
	})
	return losers, err
}

// notePage ensures the catalog covers a page observed in the log.
func (e *Engine) notePage(tableID uint32, page int) {
	if page <= 0 {
		return
	}
	if page >= e.nextPage {
		e.nextPage = page + 1
	}
	t, ok := e.tables[tableID]
	if !ok {
		return
	}
	for _, p := range t.pages {
		if p == page {
			return
		}
	}
	t.pages = append(t.pages, page)
}

// redo replays every page action whose effect has not reached the page.
func (e *Engine) redo(from wal.LSN) error {
	return e.log.Iterate(from, func(r wal.Record) bool {
		switch r.Type {
		case wal.TypeUpdate, wal.TypeInsert, wal.TypeCLR:
		default:
			return true
		}
		rid := heapfile.UnpackRID(r.RID)
		frame, err := e.pool.Fetch(int(rid.Page))
		if err != nil {
			// Page never reached the device: materialize it fresh.
			frame, err = e.pool.NewPage(int(rid.Page))
			if err != nil {
				return true
			}
		}
		frame.Latch.Lock()
		if heapfile.PageLSN(frame.Data) < uint64(r.LSN) {
			e.applyRedo(frame, r, rid)
		}
		frame.Latch.Unlock()
		e.pool.Unpin(frame)
		return true
	})
}

// applyRedo applies one record to a pinned, latched frame.
func (e *Engine) applyRedo(frame *bufferpool.Frame, r wal.Record, rid heapfile.RID) {
	switch {
	case r.Type == wal.TypeInsert:
		_ = heapfile.InsertAt(frame.Data, rid.Slot, r.After)
	case r.Type == wal.TypeUpdate:
		_ = heapfile.Update(frame.Data, rid.Slot, r.After)
	case r.Type == wal.TypeCLR && len(r.Payload) > 0 && r.Payload[0] == 1:
		_ = heapfile.Delete(frame.Data, rid.Slot)
	case r.Type == wal.TypeCLR:
		_ = heapfile.Update(frame.Data, rid.Slot, r.After)
	}
	e.pool.MarkDirty(frame, uint64(r.LSN))
}

// undoLosers rolls back every loser transaction, newest record first,
// writing CLRs so a crash during recovery stays idempotent.
func (e *Engine) undoLosers(losers map[uint64]*loserTxn) error {
	for _, lt := range losers {
		cur := lt.lastLSN
		for cur != wal.NilLSN {
			rec, err := e.log.ReadAt(cur)
			if err != nil {
				break // below truncation horizon: fully undone already
			}
			switch rec.Type {
			case wal.TypeUpdate:
				e.recoveryUndo(rec, rec.Before, false)
				cur = rec.PrevLSN
			case wal.TypeInsert:
				e.recoveryUndo(rec, nil, true)
				cur = rec.PrevLSN
			case wal.TypeCLR:
				cur = rec.UndoNext
			default:
				cur = rec.PrevLSN
			}
		}
		rec := &wal.Record{Type: wal.TypeAbort, TxnID: lt.id, PrevLSN: lt.lastLSN}
		if _, err := e.log.Append(rec); err != nil {
			return err
		}
	}
	if len(losers) > 0 {
		return e.log.Force(e.log.TailLSN())
	}
	return nil
}

// recoveryUndo reverses one action on the page and logs a CLR.
func (e *Engine) recoveryUndo(rec wal.Record, before []byte, wasInsert bool) {
	clr := &wal.Record{
		Type: wal.TypeCLR, TxnID: rec.TxnID, PrevLSN: rec.LSN,
		Table: rec.Table, Key: rec.Key, RID: rec.RID,
		After: before, UndoNext: rec.PrevLSN,
	}
	if wasInsert {
		clr.Payload = []byte{1}
	}
	lsn, err := e.log.Append(clr)
	if err != nil {
		return
	}
	rid := heapfile.UnpackRID(rec.RID)
	frame, ferr := e.pool.Fetch(int(rid.Page))
	if ferr != nil {
		return
	}
	frame.Latch.Lock()
	if wasInsert {
		_ = heapfile.Delete(frame.Data, rid.Slot)
	} else {
		_ = heapfile.Update(frame.Data, rid.Slot, before)
	}
	e.pool.MarkDirty(frame, uint64(lsn))
	frame.Latch.Unlock()
	e.pool.Unpin(frame)
}

// rebuildIndexes scans every table's heap pages and reconstructs its
// B+tree and fill page.
func (e *Engine) rebuildIndexes() error {
	for _, t := range e.tables {
		t.index = btree.New()
		t.fill = -1
		for _, pg := range t.pages {
			frame, err := e.pool.Fetch(pg)
			if err != nil {
				continue // page allocated but never written before the crash
			}
			frame.Latch.Lock()
			heapfile.Records(frame.Data, func(slot uint16, row []byte) bool {
				key, _, derr := decodeRow(row)
				if derr == nil {
					rid := heapfile.RID{Page: uint32(pg), Slot: slot}
					t.index.Put(key, rid.Pack())
				}
				return true
			})
			if heapfile.FreeBytes(frame.Data) > blockdev.PageSize/4 {
				t.fill = pg
			}
			frame.Latch.Unlock()
			e.pool.Unpin(frame)
		}
	}
	return nil
}

// loadCatalog restores tables, allocation counters, and txSeq.
func (e *Engine) loadCatalog(blob []byte) error {
	c, err := parseCatalog(blob)
	if err != nil {
		return err
	}
	e.nextTable = c.nextTable
	e.nextPage = c.nextPage
	e.txSeq = c.txSeq
	for _, tc := range c.tables {
		t := &table{
			id:    tc.id,
			name:  tc.name,
			mu:    e.eng.NewMutex(fmt.Sprintf("tbl-%d", tc.id)),
			index: btree.New(),
			pages: tc.pages,
			fill:  -1,
		}
		e.tables[t.id] = t
	}
	return nil
}

// loadCatalogTablesOnly merges tables from a later checkpoint (CreateTable
// writes one) without rewinding counters.
func (e *Engine) loadCatalogTablesOnly(blob []byte) error {
	c, err := parseCatalog(blob)
	if err != nil {
		return err
	}
	if c.nextTable > e.nextTable {
		e.nextTable = c.nextTable
	}
	if c.nextPage > e.nextPage {
		e.nextPage = c.nextPage
	}
	for _, tc := range c.tables {
		if _, ok := e.tables[tc.id]; !ok {
			e.tables[tc.id] = &table{
				id:    tc.id,
				name:  tc.name,
				mu:    e.eng.NewMutex(fmt.Sprintf("tbl-%d", tc.id)),
				index: btree.New(),
				pages: tc.pages,
				fill:  -1,
			}
		}
	}
	return nil
}

// Parsed catalog forms.
type catalogData struct {
	nextTable uint32
	nextPage  int
	txSeq     uint64
	tables    []catalogTable
	active    []catalogTxn
}

type catalogTable struct {
	id    uint32
	name  string
	pages []int
}

type catalogTxn struct {
	id       uint64
	lastLSN  wal.LSN
	firstLSN wal.LSN
}

func parseCatalog(blob []byte) (*catalogData, error) {
	c := &catalogData{}
	off := 0
	r32 := func() (uint32, error) {
		if off+4 > len(blob) {
			return 0, errors.New("shoremt: short catalog")
		}
		v := binary.LittleEndian.Uint32(blob[off:])
		off += 4
		return v, nil
	}
	r64 := func() (uint64, error) {
		if off+8 > len(blob) {
			return 0, errors.New("shoremt: short catalog")
		}
		v := binary.LittleEndian.Uint64(blob[off:])
		off += 8
		return v, nil
	}
	var err error
	if c.nextTable, err = r32(); err != nil {
		return nil, err
	}
	np, err := r64()
	if err != nil {
		return nil, err
	}
	c.nextPage = int(np)
	if c.txSeq, err = r64(); err != nil {
		return nil, err
	}
	nt, err := r32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nt; i++ {
		var tc catalogTable
		if tc.id, err = r32(); err != nil {
			return nil, err
		}
		if off+2 > len(blob) {
			return nil, errors.New("shoremt: short catalog name")
		}
		nameLen := int(binary.LittleEndian.Uint16(blob[off:]))
		off += 2
		if off+nameLen > len(blob) {
			return nil, errors.New("shoremt: short catalog name body")
		}
		tc.name = string(blob[off : off+nameLen])
		off += nameLen
		npg, err := r32()
		if err != nil {
			return nil, err
		}
		for j := uint32(0); j < npg; j++ {
			pg, err := r64()
			if err != nil {
				return nil, err
			}
			tc.pages = append(tc.pages, int(pg))
		}
		c.tables = append(c.tables, tc)
	}
	na, err := r32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < na; i++ {
		var a catalogTxn
		if a.id, err = r64(); err != nil {
			return nil, err
		}
		l, err := r64()
		if err != nil {
			return nil, err
		}
		a.lastLSN = wal.LSN(l)
		f, err := r64()
		if err != nil {
			return nil, err
		}
		a.firstLSN = wal.LSN(f)
		c.active = append(c.active, a)
	}
	return c, nil
}

// catalogActive extracts just the active-transaction table.
func catalogActive(blob []byte) []catalogTxn {
	c, err := parseCatalog(blob)
	if err != nil {
		return nil
	}
	return c.active
}

// Silence unused-import guards in builds without recovery tests.
var _ = lockmgr.Shared
