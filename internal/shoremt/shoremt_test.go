package shoremt

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/kaml-ssd/kaml/internal/blockdev"
	"github.com/kaml-ssd/kaml/internal/flash"
	"github.com/kaml-ssd/kaml/internal/ftl"
	"github.com/kaml-ssd/kaml/internal/nvme"
	"github.com/kaml-ssd/kaml/internal/sim"
	"github.com/kaml-ssd/kaml/internal/storage"
)

func newEngine(mod func(*Config)) (*sim.Engine, *Engine) {
	fc := flash.DefaultConfig()
	fc.Channels = 4
	fc.ChipsPerChannel = 2
	fc.BlocksPerChip = 16
	fc.PagesPerBlock = 16
	e := sim.NewEngine()
	arr := flash.New(e, fc)
	ctrl := nvme.New(e, nvme.DefaultConfig())
	dev := blockdev.New(ftl.New(arr, ctrl, ftl.DefaultConfig(fc)))
	cfg := DefaultConfig()
	cfg.PoolFrames = 64
	cfg.LogPages = 64
	if mod != nil {
		mod(&cfg)
	}
	return e, New(dev, e, cfg)
}

func withEngine(t *testing.T, mod func(*Config), fn func(e *sim.Engine, eng *Engine)) {
	t.Helper()
	e, eng := newEngine(mod)
	e.Go("test", func() {
		defer eng.Close()
		fn(e, eng)
	})
	e.Wait()
}

func TestInsertCommitRead(t *testing.T) {
	withEngine(t, nil, func(e *sim.Engine, eng *Engine) {
		tbl, err := eng.CreateTable("accounts", storage.TableHint{})
		if err != nil {
			t.Fatal(err)
		}
		tx := eng.Begin()
		if err := tx.Insert(tbl, 1, []byte("balance=100")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		tx.Free()
		tx2 := eng.Begin()
		v, err := tx2.Read(tbl, 1)
		if err != nil || string(v) != "balance=100" {
			t.Fatalf("%q %v", v, err)
		}
		tx2.Commit()
		tx2.Free()
	})
}

func TestUpdateAndReadLatest(t *testing.T) {
	withEngine(t, nil, func(e *sim.Engine, eng *Engine) {
		tbl, _ := eng.CreateTable("t", storage.TableHint{})
		tx := eng.Begin()
		tx.Insert(tbl, 5, []byte("v1"))
		tx.Commit()
		tx.Free()
		tx = eng.Begin()
		if err := tx.Update(tbl, 5, []byte("v2-longer")); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
		tx.Free()
		tx = eng.Begin()
		v, err := tx.Read(tbl, 5)
		if err != nil || string(v) != "v2-longer" {
			t.Fatalf("%q %v", v, err)
		}
		tx.Commit()
		tx.Free()
	})
}

func TestReadMissing(t *testing.T) {
	withEngine(t, nil, func(e *sim.Engine, eng *Engine) {
		tbl, _ := eng.CreateTable("t", storage.TableHint{})
		tx := eng.Begin()
		if _, err := tx.Read(tbl, 404); !errors.Is(err, storage.ErrNotFound) {
			t.Fatalf("err=%v", err)
		}
		tx.Commit()
		tx.Free()
	})
}

func TestAbortRollsBackUpdate(t *testing.T) {
	withEngine(t, nil, func(e *sim.Engine, eng *Engine) {
		tbl, _ := eng.CreateTable("t", storage.TableHint{})
		tx := eng.Begin()
		tx.Insert(tbl, 1, []byte("original"))
		tx.Commit()
		tx.Free()

		tx = eng.Begin()
		tx.Update(tbl, 1, []byte("mutated!"))
		// The update is applied in place (steal); abort must restore it.
		tx.Abort()
		tx.Free()

		tx = eng.Begin()
		v, err := tx.Read(tbl, 1)
		if err != nil || string(v) != "original" {
			t.Fatalf("rollback failed: %q %v", v, err)
		}
		tx.Commit()
		tx.Free()
	})
}

func TestAbortRollsBackInsert(t *testing.T) {
	withEngine(t, nil, func(e *sim.Engine, eng *Engine) {
		tbl, _ := eng.CreateTable("t", storage.TableHint{})
		tx := eng.Begin()
		tx.Insert(tbl, 7, []byte("phantom"))
		tx.Abort()
		tx.Free()
		tx = eng.Begin()
		if _, err := tx.Read(tbl, 7); !errors.Is(err, storage.ErrNotFound) {
			t.Fatalf("phantom visible: %v", err)
		}
		tx.Commit()
		tx.Free()
	})
}

func TestMultiRecordTransaction(t *testing.T) {
	withEngine(t, nil, func(e *sim.Engine, eng *Engine) {
		tbl, _ := eng.CreateTable("t", storage.TableHint{})
		tx := eng.Begin()
		for k := uint64(0); k < 20; k++ {
			if err := tx.Insert(tbl, k, bytes.Repeat([]byte{byte(k)}, 512)); err != nil {
				t.Fatal(err)
			}
		}
		tx.Commit()
		tx.Free()
		tx = eng.Begin()
		for k := uint64(0); k < 20; k++ {
			v, err := tx.Read(tbl, k)
			if err != nil || !bytes.Equal(v, bytes.Repeat([]byte{byte(k)}, 512)) {
				t.Fatalf("key %d: %v", k, err)
			}
		}
		tx.Commit()
		tx.Free()
	})
}

func TestRecordGrowthRelocates(t *testing.T) {
	withEngine(t, nil, func(e *sim.Engine, eng *Engine) {
		tbl, _ := eng.CreateTable("t", storage.TableHint{})
		// Fill a page with mid-size rows, then grow one beyond its page.
		tx := eng.Begin()
		for k := uint64(0); k < 12; k++ {
			tx.Insert(tbl, k, bytes.Repeat([]byte{1}, 600))
		}
		tx.Commit()
		tx.Free()
		tx = eng.Begin()
		big := bytes.Repeat([]byte{9}, 3000)
		if err := tx.Update(tbl, 3, big); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
		tx.Free()
		tx = eng.Begin()
		v, err := tx.Read(tbl, 3)
		if err != nil || !bytes.Equal(v, big) {
			t.Fatalf("grown row: %d bytes %v", len(v), err)
		}
		// Neighbors intact.
		for k := uint64(0); k < 12; k++ {
			if k == 3 {
				continue
			}
			if _, err := tx.Read(tbl, k); err != nil {
				t.Fatalf("neighbor %d: %v", k, err)
			}
		}
		tx.Commit()
		tx.Free()
	})
}

func TestManyPagesSpill(t *testing.T) {
	withEngine(t, nil, func(e *sim.Engine, eng *Engine) {
		tbl, _ := eng.CreateTable("t", storage.TableHint{})
		const n = 300
		row := bytes.Repeat([]byte{7}, 512)
		for k := uint64(0); k < n; k++ {
			tx := eng.Begin()
			if err := tx.Insert(tbl, k, row); err != nil {
				t.Fatalf("insert %d: %v", k, err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("commit %d: %v", k, err)
			}
			tx.Free()
		}
		tx := eng.Begin()
		for k := uint64(0); k < n; k += 17 {
			if _, err := tx.Read(tbl, k); err != nil {
				t.Fatalf("read %d: %v", k, err)
			}
		}
		tx.Commit()
		tx.Free()
	})
}

func TestConcurrentTransfersConserveMoney(t *testing.T) {
	e, eng := newEngine(func(c *Config) { c.CheckpointEvery = 10 * time.Millisecond })
	e.Go("main", func() {
		defer eng.Close()
		tbl, _ := eng.CreateTable("bank", storage.TableHint{})
		const accounts = uint64(20)
		const initial = 1000
		tx := eng.Begin()
		for a := uint64(0); a < accounts; a++ {
			tx.Insert(tbl, a, []byte(fmt.Sprintf("%08d", initial)))
		}
		tx.Commit()
		tx.Free()

		wg := e.NewWaitGroup()
		for w := 0; w < 4; w++ {
			w := w
			wg.Add(1)
			e.Go("xfer", func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < 30; i++ {
					from := uint64(rng.Intn(int(accounts)))
					to := uint64(rng.Intn(int(accounts)))
					if from == to {
						to = (to + 1) % accounts
					}
					err := storage.RunTxn(eng, func(tx storage.Tx) error {
						fv, err := tx.Read(tbl, from)
						if err != nil {
							return err
						}
						tv, err := tx.Read(tbl, to)
						if err != nil {
							return err
						}
						var fb, tb int
						fmt.Sscanf(string(fv), "%d", &fb)
						fmt.Sscanf(string(tv), "%d", &tb)
						if err := tx.Update(tbl, from, []byte(fmt.Sprintf("%08d", fb-1))); err != nil {
							return err
						}
						if err := tx.Update(tbl, to, []byte(fmt.Sprintf("%08d", tb+1))); err != nil {
							return err
						}
						return tx.Commit()
					})
					if err != nil {
						t.Errorf("transfer: %v", err)
						return
					}
				}
			})
		}
		wg.Wait()
		total := 0
		tx = eng.Begin()
		for a := uint64(0); a < accounts; a++ {
			v, err := tx.Read(tbl, a)
			if err != nil {
				t.Errorf("read %d: %v", a, err)
				return
			}
			var b int
			fmt.Sscanf(string(v), "%d", &b)
			total += b
		}
		tx.Commit()
		tx.Free()
		if total != int(accounts)*initial {
			t.Errorf("money not conserved: %d != %d", total, int(accounts)*initial)
		}
	})
	e.Wait()
}

func TestCrashRecoveryCommittedSurvivesLoserRollsBack(t *testing.T) {
	fc := flash.DefaultConfig()
	fc.Channels = 4
	fc.ChipsPerChannel = 2
	fc.BlocksPerChip = 16
	fc.PagesPerBlock = 16
	e := sim.NewEngine()
	arr := flash.New(e, fc)
	ctrl := nvme.New(e, nvme.DefaultConfig())
	dev := blockdev.New(ftl.New(arr, ctrl, ftl.DefaultConfig(fc)))
	cfg := DefaultConfig()
	cfg.PoolFrames = 16 // small pool: dirty evictions exercise WAL rule
	cfg.LogPages = 64
	cfg.CheckpointEvery = 0 // manual checkpoints for determinism
	eng := New(dev, e, cfg)
	e.Go("main", func() {
		defer dev.Close()
		tbl, err := eng.CreateTable("t", storage.TableHint{})
		if err != nil {
			t.Error(err)
			return
		}
		// Committed data.
		for k := uint64(0); k < 50; k++ {
			tx := eng.Begin()
			tx.Insert(tbl, k, []byte(fmt.Sprintf("committed-%d", k)))
			if err := tx.Commit(); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
			tx.Free()
		}
		if err := eng.Checkpoint(); err != nil {
			t.Errorf("checkpoint: %v", err)
			return
		}
		// More committed work after the checkpoint.
		for k := uint64(50); k < 80; k++ {
			tx := eng.Begin()
			tx.Insert(tbl, k, []byte(fmt.Sprintf("committed-%d", k)))
			tx.Commit()
			tx.Free()
		}
		// A loser: updates applied in place, then crash before commit.
		loser := eng.Begin()
		loser.Update(tbl, 10, []byte("UNCOMMITTED"))
		loser.Insert(tbl, 999, []byte("UNCOMMITTED-INSERT"))
		// Force the loser's dirt to disk via eviction pressure so redo/undo
		// both have work: flush everything, simulating steal.
		eng.Pool().FlushAll()

		eng.Crash()
		eng2, err := Recover(dev, e, cfg)
		if err != nil {
			t.Errorf("recover: %v", err)
			return
		}
		tx := eng2.Begin()
		for k := uint64(0); k < 80; k++ {
			want := fmt.Sprintf("committed-%d", k)
			v, err := tx.Read(tbl, k)
			if err != nil || string(v) != want {
				t.Errorf("key %d after recovery: %q %v", k, v, err)
				return
			}
		}
		if _, err := tx.Read(tbl, 999); !errors.Is(err, storage.ErrNotFound) {
			t.Errorf("loser insert visible: %v", err)
		}
		tx.Commit()
		tx.Free()
		// The recovered engine accepts new work.
		tx = eng2.Begin()
		if err := tx.Insert(tbl, 2000, []byte("after-recovery")); err != nil {
			t.Errorf("post-recovery insert: %v", err)
		}
		tx.Commit()
		tx.Free()
		eng2.mu.Lock()
		eng2.closed = true
		eng2.mu.Unlock()
		eng2.stopped.Wait()
	})
	e.Wait()
}

func TestCommitLatencyIncludesLogForce(t *testing.T) {
	withEngine(t, nil, func(e *sim.Engine, eng *Engine) {
		tbl, _ := eng.CreateTable("t", storage.TableHint{})
		tx := eng.Begin()
		tx.Insert(tbl, 1, []byte("x"))
		start := e.Now()
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		lat := e.Now() - start
		tx.Free()
		// A commit must at least pay a device write (log force) round trip.
		if lat < 20*time.Microsecond {
			t.Fatalf("commit suspiciously fast: %v", lat)
		}
		_, forces, _ := eng.Log().Stats()
		if forces == 0 {
			t.Fatal("commit did not force the log")
		}
	})
}

func TestReadOnlyCommitSkipsForce(t *testing.T) {
	withEngine(t, nil, func(e *sim.Engine, eng *Engine) {
		tbl, _ := eng.CreateTable("t", storage.TableHint{})
		tx := eng.Begin()
		tx.Insert(tbl, 1, []byte("x"))
		tx.Commit()
		tx.Free()
		_, before, _ := eng.Log().Stats()
		ro := eng.Begin()
		ro.Read(tbl, 1)
		ro.Commit()
		ro.Free()
		_, after, _ := eng.Log().Stats()
		if after != before {
			t.Fatal("read-only txn forced the log")
		}
	})
}

func TestLogFullSurfacesError(t *testing.T) {
	// A tiny log region with the checkpointer disabled: commits must fail
	// with an error once the log fills, not corrupt state or panic.
	e, eng := newEngine(func(c *Config) {
		c.LogPages = 4
		c.CheckpointEvery = 0
	})
	e.Go("main", func() {
		defer eng.Close()
		tbl, err := eng.CreateTable("t", storage.TableHint{})
		if err != nil {
			t.Error(err)
			return
		}
		row := bytes.Repeat([]byte{1}, 1024)
		sawError := false
		for k := uint64(0); k < 100; k++ {
			tx := eng.Begin()
			if err := tx.Insert(tbl, k, row); err != nil {
				sawError = true
				tx.Free()
				break
			}
			if err := tx.Commit(); err != nil {
				sawError = true
			}
			tx.Free()
			if sawError {
				break
			}
		}
		if !sawError {
			t.Error("log never filled / error never surfaced")
		}
	})
	e.Wait()
}

func TestManualCheckpointTruncatesLog(t *testing.T) {
	e, eng := newEngine(func(c *Config) {
		c.LogPages = 8
		c.CheckpointEvery = 0
	})
	e.Go("main", func() {
		defer eng.Close()
		tbl, _ := eng.CreateTable("t", storage.TableHint{})
		row := bytes.Repeat([]byte{1}, 512)
		// Interleave commits with checkpoints: far more log traffic than
		// the region holds, kept alive by truncation.
		for k := uint64(0); k < 120; k++ {
			tx := eng.Begin()
			if err := tx.Insert(tbl, k, row); err != nil {
				t.Errorf("insert %d: %v", k, err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("commit %d: %v", k, err)
				return
			}
			tx.Free()
			if k%10 == 9 {
				if err := eng.Checkpoint(); err != nil {
					t.Errorf("checkpoint: %v", err)
					return
				}
			}
		}
		tx := eng.Begin()
		if _, err := tx.Read(tbl, 119); err != nil {
			t.Errorf("read back: %v", err)
		}
		tx.Commit()
		tx.Free()
	})
	e.Wait()
}
