package shoremt

import (
	"errors"
	"fmt"

	"github.com/kaml-ssd/kaml/internal/heapfile"
	"github.com/kaml-ssd/kaml/internal/lockmgr"
	"github.com/kaml-ssd/kaml/internal/storage"
	"github.com/kaml-ssd/kaml/internal/wal"
)

// Txn is one ARIES transaction: updates apply in place to buffer-pool
// pages as they happen (steal/no-force), guarded by SS2PL locks; commit is
// a synchronous log force; abort rolls back through the prevLSN chain
// writing CLRs.
type Txn struct {
	e        *Engine
	id       uint64
	lt       *lockmgr.Txn
	firstLSN wal.LSN
	lastLSN  wal.LSN
	done     bool
}

var _ storage.Tx = (*Txn)(nil)

// Begin implements storage.Engine.
func (e *Engine) Begin() storage.Tx {
	e.mu.Lock()
	e.txSeq++
	tx := &Txn{e: e, id: e.txSeq, lt: e.lm.NewTxn(e.txSeq)}
	e.active[tx.id] = tx
	e.mu.Unlock()
	return tx
}

// BeginRetry implements storage.Engine: the retry keeps its predecessor's
// wait-die priority (and with it, the transaction ID — safe because the
// previous incarnation's ABORT record closed its log chain).
func (e *Engine) BeginRetry(prev storage.Tx) storage.Tx {
	p, ok := prev.(*Txn)
	if !ok {
		return e.Begin()
	}
	tx := &Txn{e: e, id: p.id, lt: e.lm.NewTxn(p.lt.TS)}
	e.mu.Lock()
	e.active[tx.id] = tx
	e.mu.Unlock()
	return tx
}

func (e *Engine) lookupTable(id uint32) (*table, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[id]
	if !ok {
		return nil, fmt.Errorf("shoremt: no table %d", id)
	}
	return t, nil
}

// Read implements storage.Tx.
func (tx *Txn) Read(tableID uint32, key uint64) ([]byte, error) {
	if tx.done {
		return nil, storage.ErrTxnDone
	}
	tx.e.eng.Sleep(tx.e.cfg.HostOpCost)
	t, err := tx.e.lookupTable(tableID)
	if err != nil {
		return nil, err
	}
	if err := tx.e.lm.Acquire(tx.lt, tableID, key, lockmgr.Shared); err != nil {
		tx.dieAbort()
		return nil, fmt.Errorf("%w: %v", storage.ErrAborted, err)
	}
	t.mu.Lock()
	packed, ierr := t.index.Get(key)
	t.mu.Unlock()
	if ierr != nil {
		return nil, storage.ErrNotFound
	}
	rid := heapfile.UnpackRID(packed)
	frame, err := tx.e.pool.Fetch(int(rid.Page))
	if err != nil {
		return nil, err
	}
	frame.Latch.Lock()
	row, rerr := heapfile.Read(frame.Data, rid.Slot)
	frame.Latch.Unlock()
	tx.e.pool.Unpin(frame)
	if rerr != nil {
		return nil, rerr
	}
	_, val, derr := decodeRow(row)
	if derr != nil {
		return nil, derr
	}
	return val, nil
}

// Update implements storage.Tx: in-place page update under WAL.
func (tx *Txn) Update(tableID uint32, key uint64, value []byte) error {
	if tx.done {
		return storage.ErrTxnDone
	}
	tx.e.eng.Sleep(tx.e.cfg.HostOpCost)
	t, err := tx.e.lookupTable(tableID)
	if err != nil {
		return err
	}
	if err := tx.e.lm.Acquire(tx.lt, tableID, key, lockmgr.Exclusive); err != nil {
		tx.dieAbort()
		return fmt.Errorf("%w: %v", storage.ErrAborted, err)
	}
	t.mu.Lock()
	packed, ierr := t.index.Get(key)
	t.mu.Unlock()
	if ierr != nil {
		// Upsert semantics match the KAML engine: absent key -> insert.
		return tx.insertLocked(t, key, value)
	}
	rid := heapfile.UnpackRID(packed)
	frame, err := tx.e.pool.Fetch(int(rid.Page))
	if err != nil {
		return err
	}
	frame.Latch.Lock()
	before, rerr := heapfile.Read(frame.Data, rid.Slot)
	if rerr != nil {
		frame.Latch.Unlock()
		tx.e.pool.Unpin(frame)
		return rerr
	}
	after := encodeRow(key, value)
	rec := &wal.Record{
		Type: wal.TypeUpdate, TxnID: tx.id, PrevLSN: tx.lastLSN,
		Table: tableID, Key: key, RID: rid.Pack(),
		Before: before, After: after,
	}
	lsn, lerr := tx.e.log.Append(rec)
	if lerr != nil {
		frame.Latch.Unlock()
		tx.e.pool.Unpin(frame)
		return lerr
	}
	tx.noteLSN(lsn)
	uerr := heapfile.Update(frame.Data, rid.Slot, after)
	if uerr == nil {
		tx.e.pool.MarkDirty(frame, uint64(lsn))
	}
	frame.Latch.Unlock()
	tx.e.pool.Unpin(frame)
	if errors.Is(uerr, heapfile.ErrNoSpace) {
		// The grown record no longer fits its page: relocate (delete +
		// re-insert elsewhere). The update record above already logged the
		// delete's before-image; log the relocation as an insert.
		return tx.relocate(t, key, rid, after)
	}
	return uerr
}

// relocate moves a grown row to a fresh page: tombstone the old RID, insert
// the row elsewhere, and swing the index.
func (tx *Txn) relocate(t *table, key uint64, oldRID heapfile.RID, row []byte) error {
	frame, err := tx.e.pool.Fetch(int(oldRID.Page))
	if err != nil {
		return err
	}
	frame.Latch.Lock()
	_ = heapfile.Delete(frame.Data, oldRID.Slot)
	tx.e.pool.MarkDirty(frame, uint64(tx.lastLSN))
	frame.Latch.Unlock()
	tx.e.pool.Unpin(frame)
	key2, val, _ := decodeRow(row)
	if key2 != key {
		return errors.New("shoremt: relocate key mismatch")
	}
	return tx.insertLocked(t, key, val)
}

// Insert implements storage.Tx.
func (tx *Txn) Insert(tableID uint32, key uint64, value []byte) error {
	if tx.done {
		return storage.ErrTxnDone
	}
	tx.e.eng.Sleep(tx.e.cfg.HostOpCost)
	t, err := tx.e.lookupTable(tableID)
	if err != nil {
		return err
	}
	if err := tx.e.lm.Acquire(tx.lt, tableID, key, lockmgr.Exclusive); err != nil {
		tx.dieAbort()
		return fmt.Errorf("%w: %v", storage.ErrAborted, err)
	}
	t.mu.Lock()
	_, ierr := t.index.Get(key)
	t.mu.Unlock()
	if ierr == nil {
		return tx.Update(tableID, key, value)
	}
	return tx.insertLocked(t, key, value)
}

// insertLocked places a new row. The caller already holds the X lock.
func (tx *Txn) insertLocked(t *table, key uint64, value []byte) error {
	row := encodeRow(key, value)
	for attempt := 0; attempt < 3; attempt++ {
		// Pick (or allocate) the table's fill page.
		t.mu.Lock()
		pg := t.fill
		t.mu.Unlock()
		if pg < 0 {
			npg, err := tx.e.allocPage(t)
			if err != nil {
				return err
			}
			t.mu.Lock()
			t.fill = npg
			t.mu.Unlock()
			pg = npg
		}
		frame, err := tx.e.pool.Fetch(pg)
		if err != nil {
			return err
		}
		frame.Latch.Lock()
		if heapfile.FreeBytes(frame.Data) < len(row)+8 {
			frame.Latch.Unlock()
			tx.e.pool.Unpin(frame)
			t.mu.Lock()
			if t.fill == pg {
				t.fill = -1 // page is full; next iteration allocates
			}
			t.mu.Unlock()
			continue
		}
		rec := &wal.Record{
			Type: wal.TypeInsert, TxnID: tx.id, PrevLSN: tx.lastLSN,
			Table: t.id, Key: key, After: row,
		}
		// Reserve the slot before logging so the record carries the RID.
		slot, serr := heapfile.Insert(frame.Data, row)
		if serr != nil {
			frame.Latch.Unlock()
			tx.e.pool.Unpin(frame)
			return serr
		}
		rid := heapfile.RID{Page: uint32(pg), Slot: slot}
		rec.RID = rid.Pack()
		lsn, lerr := tx.e.log.Append(rec)
		if lerr != nil {
			_ = heapfile.Delete(frame.Data, slot)
			frame.Latch.Unlock()
			tx.e.pool.Unpin(frame)
			return lerr
		}
		tx.noteLSN(lsn)
		tx.e.pool.MarkDirty(frame, uint64(lsn))
		frame.Latch.Unlock()
		tx.e.pool.Unpin(frame)
		t.mu.Lock()
		t.index.Put(key, rid.Pack())
		t.mu.Unlock()
		return nil
	}
	return errors.New("shoremt: could not place row after 3 attempts")
}

func (tx *Txn) noteLSN(lsn wal.LSN) {
	if tx.firstLSN == wal.NilLSN {
		tx.firstLSN = lsn
	}
	tx.lastLSN = lsn
}

// Commit implements storage.Tx: append COMMIT and force the log — the
// synchronous, centralized durability point (§V-D.1).
func (tx *Txn) Commit() error {
	if tx.done {
		return storage.ErrTxnDone
	}
	tx.e.eng.Sleep(tx.e.cfg.HostOpCost)
	if tx.lastLSN != wal.NilLSN {
		rec := &wal.Record{Type: wal.TypeCommit, TxnID: tx.id, PrevLSN: tx.lastLSN}
		lsn, err := tx.e.log.Append(rec)
		if err != nil {
			tx.Abort()
			return err
		}
		if err := tx.e.log.Force(lsn); err != nil {
			tx.Abort()
			return err
		}
	}
	tx.finish(true)
	return nil
}

// Abort implements storage.Tx: roll back via the prevLSN chain, writing
// compensation log records.
func (tx *Txn) Abort() {
	if tx.done {
		return
	}
	tx.rollback()
	tx.finish(false)
}

// dieAbort is the wait-die kill path. The backoff happens after locks are
// released so older waiters get a lock-free window.
func (tx *Txn) dieAbort() {
	if tx.done {
		return
	}
	tx.rollback()
	tx.finish(false)
	tx.e.lm.Backoff()
}

// rollback undoes the transaction's updates newest-first.
func (tx *Txn) rollback() {
	cur := tx.lastLSN
	for cur != wal.NilLSN {
		rec, err := tx.e.log.ReadAt(cur)
		if err != nil {
			break // log truncated under us; nothing more to undo
		}
		switch rec.Type {
		case wal.TypeUpdate:
			tx.undoUpdate(rec)
			cur = rec.PrevLSN
		case wal.TypeInsert:
			tx.undoInsert(rec)
			cur = rec.PrevLSN
		case wal.TypeCLR:
			cur = rec.UndoNext
		default:
			cur = rec.PrevLSN
		}
	}
	if tx.lastLSN != wal.NilLSN {
		rec := &wal.Record{Type: wal.TypeAbort, TxnID: tx.id, PrevLSN: tx.lastLSN}
		if lsn, err := tx.e.log.Append(rec); err == nil {
			tx.lastLSN = lsn
		}
	}
}

// undoUpdate restores the before-image and logs a CLR.
func (tx *Txn) undoUpdate(rec wal.Record) {
	clr := &wal.Record{
		Type: wal.TypeCLR, TxnID: tx.id, PrevLSN: tx.lastLSN,
		Table: rec.Table, Key: rec.Key, RID: rec.RID,
		After: rec.Before, UndoNext: rec.PrevLSN,
	}
	lsn, err := tx.e.log.Append(clr)
	if err != nil {
		return
	}
	tx.lastLSN = lsn
	rid := heapfile.UnpackRID(rec.RID)
	frame, err := tx.e.pool.Fetch(int(rid.Page))
	if err != nil {
		return
	}
	frame.Latch.Lock()
	if err := heapfile.Update(frame.Data, rid.Slot, rec.Before); err == nil {
		tx.e.pool.MarkDirty(frame, uint64(lsn))
	}
	frame.Latch.Unlock()
	tx.e.pool.Unpin(frame)
	// The update may itself have been an upsert-insert with a different
	// index target; index state for updates is unchanged (same RID).
}

// undoInsert deletes the inserted row and logs a CLR (Payload[0]=1 marks
// "delete at RID" for redo of the CLR).
func (tx *Txn) undoInsert(rec wal.Record) {
	clr := &wal.Record{
		Type: wal.TypeCLR, TxnID: tx.id, PrevLSN: tx.lastLSN,
		Table: rec.Table, Key: rec.Key, RID: rec.RID,
		UndoNext: rec.PrevLSN, Payload: []byte{1},
	}
	lsn, err := tx.e.log.Append(clr)
	if err != nil {
		return
	}
	tx.lastLSN = lsn
	rid := heapfile.UnpackRID(rec.RID)
	frame, err := tx.e.pool.Fetch(int(rid.Page))
	if err == nil {
		frame.Latch.Lock()
		if derr := heapfile.Delete(frame.Data, rid.Slot); derr == nil {
			tx.e.pool.MarkDirty(frame, uint64(lsn))
		}
		frame.Latch.Unlock()
		tx.e.pool.Unpin(frame)
	}
	if t, terr := tx.e.lookupTable(rec.Table); terr == nil {
		t.mu.Lock()
		_ = t.index.Delete(rec.Key)
		t.mu.Unlock()
	}
}

// finish releases locks and retires the transaction.
func (tx *Txn) finish(committed bool) {
	tx.done = true
	tx.e.lm.ReleaseAll(tx.lt)
	tx.e.mu.Lock()
	delete(tx.e.active, tx.id)
	if committed {
		tx.e.commits++
	} else {
		tx.e.aborts++
	}
	tx.e.mu.Unlock()
}

// Free implements storage.Tx.
func (tx *Txn) Free() {
	if !tx.done {
		tx.Abort()
	}
}
