package kaml_test

import (
	"errors"
	"fmt"
	"testing"

	kaml "github.com/kaml-ssd/kaml"
)

func TestPutBatchRejectsEmpty(t *testing.T) {
	withDevice(t, func(dev *kaml.Device) {
		if err := dev.PutBatch(nil); !errors.Is(err, kaml.ErrEmptyBatch) {
			t.Fatalf("nil batch: %v", err)
		}
		if err := dev.PutBatch([]kaml.Record{}); !errors.Is(err, kaml.ErrEmptyBatch) {
			t.Fatalf("empty batch: %v", err)
		}
		if err := dev.AsyncPutBatch(nil).Wait(); !errors.Is(err, kaml.ErrEmptyBatch) {
			t.Fatalf("async empty batch: %v", err)
		}
	})
}

func TestPutBatchRejectsDuplicateKeys(t *testing.T) {
	withDevice(t, func(dev *kaml.Device) {
		ns, _ := dev.CreateNamespace(kaml.NamespaceOptions{})
		other, _ := dev.CreateNamespace(kaml.NamespaceOptions{})
		dup := []kaml.Record{
			{Namespace: ns, Key: 7, Value: []byte("a")},
			{Namespace: ns, Key: 8, Value: []byte("b")},
			{Namespace: ns, Key: 7, Value: []byte("c")},
		}
		if err := dev.PutBatch(dup); !errors.Is(err, kaml.ErrDuplicateKey) {
			t.Fatalf("duplicate batch: %v", err)
		}
		// Nothing from the rejected batch may have landed.
		if _, err := dev.Get(ns, 8); !errors.Is(err, kaml.ErrKeyNotFound) {
			t.Fatalf("rejected batch leaked a record: %v", err)
		}
		// The same key in DIFFERENT namespaces is legal.
		ok := []kaml.Record{
			{Namespace: ns, Key: 7, Value: []byte("a")},
			{Namespace: other, Key: 7, Value: []byte("b")},
		}
		if err := dev.PutBatch(ok); err != nil {
			t.Fatalf("cross-namespace same key: %v", err)
		}
		if err := dev.AsyncPutBatch(dup).Wait(); !errors.Is(err, kaml.ErrDuplicateKey) {
			t.Fatalf("async duplicate batch: %v", err)
		}
	})
}

func TestAsyncPutGetFutures(t *testing.T) {
	withDevice(t, func(dev *kaml.Device) {
		ns, _ := dev.CreateNamespace(kaml.NamespaceOptions{ExpectedKeys: 256})
		// Issue a window of writes before awaiting any of them.
		puts := make([]*kaml.PutFuture, 16)
		for i := range puts {
			puts[i] = dev.AsyncPut(ns, uint64(i), []byte(fmt.Sprintf("v%d", i)))
		}
		for i, f := range puts {
			if err := f.Wait(); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
			if !f.Ready() {
				t.Fatalf("put %d not ready after Wait", i)
			}
		}
		gets := make([]*kaml.GetFuture, 16)
		for i := range gets {
			gets[i] = dev.AsyncGet(ns, uint64(i))
		}
		for i, f := range gets {
			v, err := f.Wait()
			if err != nil || string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("get %d: %q %v", i, v, err)
			}
		}
		if _, err := dev.AsyncGet(ns, 9999).Wait(); !errors.Is(err, kaml.ErrKeyNotFound) {
			t.Fatalf("missing key: %v", err)
		}
	})
}

func TestAsyncConcurrentStress(t *testing.T) {
	// Many actors each keep several commands in flight against overlapping
	// keys; run under -race this exercises the pipeline's cross-actor
	// future hand-off and the coalescer's merge path.
	withDevice(t, func(dev *kaml.Device) {
		ns, _ := dev.CreateNamespace(kaml.NamespaceOptions{ExpectedKeys: 2048})
		wg := dev.NewWaitGroup()
		const actors, rounds, window = 8, 12, 4
		for a := 0; a < actors; a++ {
			a := a
			wg.Add(1)
			dev.Go(func() {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					var puts [window]*kaml.PutFuture
					for i := 0; i < window; i++ {
						k := uint64(a*window + i) // overlaps across rounds
						puts[i] = dev.AsyncPut(ns, k, []byte(fmt.Sprintf("a%dr%di%d", a, r, i)))
					}
					for i, f := range puts {
						if err := f.Wait(); err != nil {
							t.Errorf("actor %d round %d put %d: %v", a, r, i, err)
							return
						}
					}
					var gets [window]*kaml.GetFuture
					for i := 0; i < window; i++ {
						gets[i] = dev.AsyncGet(ns, uint64(a*window+i))
					}
					for i, f := range gets {
						if _, err := f.Wait(); err != nil {
							t.Errorf("actor %d round %d get %d: %v", a, r, i, err)
							return
						}
					}
				}
			})
		}
		wg.Wait()
		st := dev.Stats()
		if st.PipelineSubmitted == 0 || st.PipelineCompleted != st.PipelineSubmitted {
			t.Fatalf("pipeline counters: submitted=%d completed=%d",
				st.PipelineSubmitted, st.PipelineCompleted)
		}
	})
}

func TestAsyncAfterCloseFails(t *testing.T) {
	dev, err := kaml.Open(kaml.SmallOptions())
	if err != nil {
		t.Fatal(err)
	}
	dev.Go(func() {
		ns, _ := dev.CreateNamespace(kaml.NamespaceOptions{})
		dev.Close()
		if err := dev.AsyncPut(ns, 1, []byte("x")).Wait(); !errors.Is(err, kaml.ErrClosed) {
			t.Errorf("put after close: %v", err)
		}
		if _, err := dev.AsyncGet(ns, 1).Wait(); !errors.Is(err, kaml.ErrClosed) {
			t.Errorf("get after close: %v", err)
		}
	})
	dev.Wait()
}
