module github.com/kaml-ssd/kaml

go 1.22
