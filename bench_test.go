// Benchmarks regenerating the paper's tables and figures, one Benchmark*
// per evaluation artifact (paper §V). Each iteration rebuilds the systems
// involved on a fresh virtual clock and replays the paper's workload at a
// reduced scale; the reported metrics are simulated-time results (MB/s,
// txn/s, ops/s), so they are deterministic across machines. Run the
// kamlbench command for the full-scale tables.
//
//	go test -bench=. -benchmem
package kaml_test

import (
	"strconv"
	"testing"

	"github.com/kaml-ssd/kaml/internal/experiments"
)

// benchScale keeps each figure's regeneration to a few wall-clock seconds.
const benchScale = experiments.Scale(0.15)

// parseCell converts a table cell like "136.53" or "2.13x" to a float.
func parseCell(tb *testing.B, s string) float64 {
	if len(s) > 0 && s[len(s)-1] == 'x' {
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		tb.Fatalf("bad cell %q: %v", s, err)
	}
	return v
}

// BenchmarkFig5Bandwidth regenerates Fig. 5: Fetch/Update/Insert bandwidth
// for the block interface and KAML at three index load factors.
func BenchmarkFig5Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.Fig5(benchScale)
		// Report the headline cells of each sub-figure at 512 B.
		fetch, update := tables[0], tables[1]
		b.ReportMetric(parseCell(b, fetch.Rows[0][1]), "read-MB/s")
		b.ReportMetric(parseCell(b, fetch.Rows[0][2]), "Get@0.1-MB/s")
		b.ReportMetric(parseCell(b, update.Rows[0][1]), "write-MB/s")
		b.ReportMetric(parseCell(b, update.Rows[0][2]), "Put@0.1-MB/s")
	}
}

// BenchmarkFig6Latency regenerates Fig. 6: single-threaded operation
// latency at load factor 0.4.
func BenchmarkFig6Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.Fig6(benchScale)
		fetch, update := tables[0], tables[1]
		b.ReportMetric(parseCell(b, fetch.Rows[0][1]), "read-us")
		b.ReportMetric(parseCell(b, fetch.Rows[0][3]), "Get-us")
		b.ReportMetric(parseCell(b, update.Rows[0][1]), "write-us")
		b.ReportMetric(parseCell(b, update.Rows[0][3]), "Put-us")
	}
}

// BenchmarkFig7BatchSize regenerates Fig. 7: the effect of Put batch size
// on update bandwidth and namespace population time.
func BenchmarkFig7BatchSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.Fig7(benchScale)
		up := tables[0]
		b.ReportMetric(parseCell(b, up.Rows[0][1]), "batch1-MB/s")
		b.ReportMetric(parseCell(b, up.Rows[2][1]), "batch4-MB/s")
	}
}

// BenchmarkFig8MultiLog regenerates Fig. 8: Put throughput as the log
// count grows from 16 to 64.
func BenchmarkFig8MultiLog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig8(benchScale)
		lo := parseCell(b, t.Rows[0][1])
		hi := parseCell(b, t.Rows[len(t.Rows)-1][1])
		b.ReportMetric(lo, "logs16-MB/s")
		b.ReportMetric(hi, "logs64-MB/s")
		if lo > 0 {
			b.ReportMetric(hi/lo, "scalingx")
		}
	}
}

// BenchmarkFig9OLTP regenerates Fig. 9: TPC-B and TPC-C throughput for
// KAML and Shore-MT variants.
func BenchmarkFig9OLTP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig9(benchScale)
		kaml := parseCell(b, t.Rows[0][1])  // KAML hit=1.0, TPC-B
		shore := parseCell(b, t.Rows[3][1]) // Shore-MT rec-lock, TPC-B
		b.ReportMetric(kaml, "KAML-tpcb-txn/s")
		b.ReportMetric(shore, "Shore-tpcb-txn/s")
		if shore > 0 {
			b.ReportMetric(kaml/shore, "speedupx")
		}
	}
}

// BenchmarkFig10YCSB regenerates Fig. 10: YCSB workload throughput for
// both engines.
func BenchmarkFig10YCSB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig10(benchScale)
		b.ReportMetric(parseCell(b, t.Rows[0][1]), "KAML-a-ops/s")
		b.ReportMetric(parseCell(b, t.Rows[0][2]), "Shore-a-ops/s")
		b.ReportMetric(parseCell(b, t.Rows[0][3]), "speedup-a-x")
	}
}

// BenchmarkConflictModel regenerates the §V-D.2 analysis: expected
// conflicting requests vs lock granularity.
func BenchmarkConflictModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Conflicts(benchScale)
		b.ReportMetric(parseCell(b, t.Rows[0][1]), "conflicts@l1")
		b.ReportMetric(parseCell(b, t.Rows[len(t.Rows)-1][1]), "conflicts@l1024")
	}
}
