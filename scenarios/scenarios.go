// Package scenarios ships the checked-in production traffic scenarios
// and their golden expected reports. The scenario files are embedded so
// `kamlbench -scenario <name>` works from any working directory, and the
// goldens let CI diff a fresh run against the expected byte-identical
// report.
//
// Every file is stored in traffic.Scenario canonical form (two-space
// JSON, trailing newline); the round-trip test enforces it. Regenerate
// after editing with:
//
//	go test ./scenarios -run TestScenarioFilesAreCanonical -update
//	go test ./internal/traffic -run TestGolden -update
package scenarios

import (
	"embed"
	"fmt"
	"sort"
	"strings"

	"github.com/kaml-ssd/kaml/internal/traffic"
)

//go:embed *.json golden/*.report.json
var files embed.FS

// Names returns the embedded scenario names, sorted.
func Names() []string {
	entries, err := files.ReadDir(".")
	if err != nil {
		panic(err)
	}
	var names []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), ".json"); ok && !e.IsDir() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Raw returns a scenario file's exact bytes.
func Raw(name string) ([]byte, error) {
	blob, err := files.ReadFile(name + ".json")
	if err != nil {
		return nil, fmt.Errorf("scenarios: unknown scenario %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return blob, nil
}

// Load parses and validates an embedded scenario.
func Load(name string) (*traffic.Scenario, error) {
	blob, err := Raw(name)
	if err != nil {
		return nil, err
	}
	return traffic.Parse(blob)
}

// Golden returns the golden expected-report bytes for a scenario, or nil
// if no golden is checked in yet.
func Golden(name string) []byte {
	blob, err := files.ReadFile("golden/" + name + ".report.json")
	if err != nil {
		return nil
	}
	return blob
}
