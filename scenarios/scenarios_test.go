package scenarios

import (
	"bytes"
	"flag"
	"os"
	"testing"

	"github.com/kaml-ssd/kaml/internal/traffic"
)

var update = flag.Bool("update", false, "rewrite scenario files in canonical form")

// TestScenarioFilesAreCanonical is the parser golden-file test: every
// checked-in scenario must round-trip parse -> normalize -> marshal to
// exactly the bytes on disk. Run with -update to canonicalize after
// editing a scenario by hand.
func TestScenarioFilesAreCanonical(t *testing.T) {
	names := Names()
	if len(names) < 4 {
		t.Fatalf("only %d scenarios checked in, want >= 4", len(names))
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			raw, err := Raw(name)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := traffic.Parse(raw)
			if err != nil {
				t.Fatalf("checked-in scenario does not parse: %v", err)
			}
			if sc.Name != name {
				t.Fatalf("scenario name %q != file name %q", sc.Name, name)
			}
			canon := sc.Canonical()
			if bytes.Equal(raw, canon) {
				return
			}
			if *update {
				if err := os.WriteFile(name+".json", canon, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			t.Fatalf("scenario file is not canonical (run with -update)\n--- canonical ---\n%s", canon)
		})
	}
}

// TestGoldenReportsPresent keeps a golden expected report checked in for
// every scenario, and keeps it parseable as a report-shaped JSON
// document. Byte-exact comparison against a fresh run lives in
// internal/traffic's acceptance test.
func TestGoldenReportsPresent(t *testing.T) {
	for _, name := range Names() {
		g := Golden(name)
		if g == nil {
			t.Errorf("scenario %q has no golden report (go test ./internal/traffic -run TestScenarioAcceptance -update)", name)
			continue
		}
		if !bytes.HasSuffix(g, []byte("\n")) {
			t.Errorf("golden for %q missing trailing newline", name)
		}
	}
}

func TestLoadUnknownScenario(t *testing.T) {
	if _, err := Load("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario loaded")
	}
}
