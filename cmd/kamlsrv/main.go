// Command kamlsrv exposes a simulated KAML SSD as a networked key-value
// store speaking kvproto: the line-oriented text protocol below, or the
// framed pipelined v2 protocol for any connection whose first line is
// "KVP2" (see internal/kvproto).
//
//	kamlsrv -addr 127.0.0.1:7040
//
// Try it with netcat:
//
//	$ printf 'CREATE 1000\nPUT 1 42 5\nhelloGET 1 42\nQUIT\n' | nc 127.0.0.1 7040
//	NS 1
//	OK
//	VAL 5
//	hello
//	BYE
//
// With -cluster, kamlsrv instead serves a sharded, replicated cluster of
// simulated devices (see internal/cluster): node i listens on the -addr
// port plus i, every node speaks the framed KVP2 protocol only, and a
// request landing on the wrong node answers MOVED with the current
// primary. Dial the whole node set with kvproto.DialCluster.
//
//	kamlsrv -cluster -nodes 4 -shards 8 -replication 2 -admin :9090
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	kaml "github.com/kaml-ssd/kaml"
	"github.com/kaml-ssd/kaml/internal/admin"
	"github.com/kaml-ssd/kaml/internal/cluster"
	"github.com/kaml-ssd/kaml/internal/kvproto"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7040", "listen address (cluster mode: node i listens on this port + i)")
	adminAddr := flag.String("admin", "", "optional admin listen address serving /metrics, /statusz and /debug/pprof (e.g. :9090)")
	small := flag.Bool("small", false, "use the scaled-down device geometry")
	clusterMode := flag.Bool("cluster", false, "serve a sharded replicated cluster instead of a single device")
	nodes := flag.Int("nodes", 4, "cluster mode: device count")
	shards := flag.Int("shards", 8, "cluster mode: hash-partition count")
	replication := flag.Int("replication", 2, "cluster mode: replicas per shard")
	hedge := flag.Bool("hedge", true, "cluster mode: hedge straggling reads against a second replica")
	flag.Parse()

	if *clusterMode {
		serveCluster(*addr, *adminAddr, *nodes, *shards, *replication, *hedge)
		return
	}

	opts := kaml.DefaultOptions()
	if *small {
		opts = kaml.SmallOptions()
	}
	dev, err := kaml.Open(opts)
	if err != nil {
		log.Fatalf("open device: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	srv := kvproto.NewServer(dev)

	// Optional admin endpoint. It reads only atomic telemetry snapshots,
	// so scraping is safe while the simulation runs.
	var adminSrv *http.Server
	if *adminAddr != "" {
		aln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			log.Fatalf("admin listen: %v", err)
		}
		adminSrv = &http.Server{Handler: admin.Handler(dev)}
		go func() {
			if err := adminSrv.Serve(aln); err != nil && err != http.ErrServerClosed {
				log.Printf("admin serve: %v", err)
			}
		}()
		log.Printf("admin endpoint on http://%s (/metrics, /statusz, /debug/pprof)", aln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("received %v, shutting down", s)
		if adminSrv != nil {
			// Let an in-progress scrape finish, then stop answering.
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			if err := adminSrv.Shutdown(ctx); err != nil {
				log.Printf("admin shutdown: %v", err)
			}
			cancel()
		}
		srv.Close()
	}()

	log.Printf("KAML key-value server on %s (device: %d channels x %d chips, %d logs)",
		ln.Addr(), opts.Flash.Channels, opts.Flash.ChipsPerChannel, opts.Firmware.NumLogs)
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("serve: %v", err)
	}

	// Final device counters, for post-mortems on what the run did.
	st := dev.Stats()
	log.Printf("final stats: gets=%d puts=%d put_records=%d programs=%d gc_erases=%d nvram_hits=%d program_retries=%d blocks_retired=%d",
		st.Gets, st.Puts, st.PutRecords, st.Programs, st.GCErases, st.NVRAMHits, st.ProgramRetries, st.BlocksRetired)
	log.Printf("pipeline stats: submitted=%d completed=%d coalesced_puts=%d coalescer_batches=%d coalescer_records=%d max_queue=%d mean_queue=%.2f",
		st.PipelineSubmitted, st.PipelineCompleted, st.CoalescedPuts, st.CoalescerBatches, st.CoalescerRecords, st.PipelineMaxQueue, st.PipelineMeanQueue)
	if reg := dev.Telemetry(); reg != nil {
		if b, err := json.Marshal(reg.Snapshot()); err == nil {
			log.Printf("final telemetry snapshot: %s", b)
		}
	}
}

// serveCluster runs the -cluster mode: one simulated device per node on a
// shared virtual clock, one framed KVP2 listener per node on sequential
// ports, and (optionally) one admin endpoint for the whole cluster.
func serveCluster(addr, adminAddr string, nodes, shards, replication int, hedge bool) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes, cfg.Shards, cfg.ReplicationFactor = nodes, shards, replication
	cfg.Hedge.Enabled = hedge
	cl, err := cluster.New(cfg)
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}

	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		log.Fatalf("bad -addr %q: %v", addr, err)
	}
	basePort, err := strconv.Atoi(portStr)
	if err != nil {
		log.Fatalf("bad -addr port %q: %v", portStr, err)
	}

	srvs := make([]*kvproto.ClusterServer, nodes)
	addrs := make([]string, nodes)
	for node := 0; node < nodes; node++ {
		nodeAddr := net.JoinHostPort(host, strconv.Itoa(basePort+node))
		ln, err := net.Listen("tcp", nodeAddr)
		if err != nil {
			log.Fatalf("listen node %d: %v", node, err)
		}
		addrs[node] = ln.Addr().String()
		srv := kvproto.NewClusterServer(cl, node)
		srvs[node] = srv
		go func(node int) {
			if err := srv.Serve(ln); err != nil {
				log.Fatalf("serve node %d: %v", node, err)
			}
		}(node)
	}

	var adminSrv *http.Server
	if adminAddr != "" {
		aln, err := net.Listen("tcp", adminAddr)
		if err != nil {
			log.Fatalf("admin listen: %v", err)
		}
		adminSrv = &http.Server{Handler: admin.ClusterHandler(cl)}
		go func() {
			if err := adminSrv.Serve(aln); err != nil && err != http.ErrServerClosed {
				log.Printf("admin serve: %v", err)
			}
		}()
		log.Printf("cluster admin endpoint on http://%s (/metrics, /statusz, /debug/pprof)", aln.Addr())
	}

	log.Printf("KAML cluster on %v (%d nodes, %d shards, RF-%d, hedged reads %v, epoch %d)",
		addrs, nodes, shards, replication, hedge, cl.Epoch())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("received %v, shutting down", s)
	if adminSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := adminSrv.Shutdown(ctx); err != nil {
			log.Printf("admin shutdown: %v", err)
		}
		cancel()
	}
	for _, srv := range srvs {
		srv.Close()
	}
	// Closing the devices must happen from a simulation actor; Wait then
	// joins every actor before we read the final status.
	done := make(chan struct{})
	cl.Go(func() { defer close(done); cl.Close() })
	<-done
	cl.Wait()

	if b, err := json.Marshal(cl.Status()); err == nil {
		log.Printf("final cluster status: %s", b)
	}
}
