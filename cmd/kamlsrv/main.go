// Command kamlsrv exposes a simulated KAML SSD as a networked key-value
// store speaking kvproto: the line-oriented text protocol below, or the
// framed pipelined v2 protocol for any connection whose first line is
// "KVP2" (see internal/kvproto).
//
//	kamlsrv -addr 127.0.0.1:7040
//
// Try it with netcat:
//
//	$ printf 'CREATE 1000\nPUT 1 42 5\nhelloGET 1 42\nQUIT\n' | nc 127.0.0.1 7040
//	NS 1
//	OK
//	VAL 5
//	hello
//	BYE
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	kaml "github.com/kaml-ssd/kaml"
	"github.com/kaml-ssd/kaml/internal/admin"
	"github.com/kaml-ssd/kaml/internal/kvproto"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7040", "listen address")
	adminAddr := flag.String("admin", "", "optional admin listen address serving /metrics, /statusz and /debug/pprof (e.g. :9090)")
	small := flag.Bool("small", false, "use the scaled-down device geometry")
	flag.Parse()

	opts := kaml.DefaultOptions()
	if *small {
		opts = kaml.SmallOptions()
	}
	dev, err := kaml.Open(opts)
	if err != nil {
		log.Fatalf("open device: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	srv := kvproto.NewServer(dev)

	// Optional admin endpoint. It reads only atomic telemetry snapshots,
	// so scraping is safe while the simulation runs.
	var adminSrv *http.Server
	if *adminAddr != "" {
		aln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			log.Fatalf("admin listen: %v", err)
		}
		adminSrv = &http.Server{Handler: admin.Handler(dev)}
		go func() {
			if err := adminSrv.Serve(aln); err != nil && err != http.ErrServerClosed {
				log.Printf("admin serve: %v", err)
			}
		}()
		log.Printf("admin endpoint on http://%s (/metrics, /statusz, /debug/pprof)", aln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("received %v, shutting down", s)
		if adminSrv != nil {
			// Let an in-progress scrape finish, then stop answering.
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			if err := adminSrv.Shutdown(ctx); err != nil {
				log.Printf("admin shutdown: %v", err)
			}
			cancel()
		}
		srv.Close()
	}()

	log.Printf("KAML key-value server on %s (device: %d channels x %d chips, %d logs)",
		ln.Addr(), opts.Flash.Channels, opts.Flash.ChipsPerChannel, opts.Firmware.NumLogs)
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("serve: %v", err)
	}

	// Final device counters, for post-mortems on what the run did.
	st := dev.Stats()
	log.Printf("final stats: gets=%d puts=%d put_records=%d programs=%d gc_erases=%d nvram_hits=%d program_retries=%d blocks_retired=%d",
		st.Gets, st.Puts, st.PutRecords, st.Programs, st.GCErases, st.NVRAMHits, st.ProgramRetries, st.BlocksRetired)
	log.Printf("pipeline stats: submitted=%d completed=%d coalesced_puts=%d coalescer_batches=%d coalescer_records=%d max_queue=%d mean_queue=%.2f",
		st.PipelineSubmitted, st.PipelineCompleted, st.CoalescedPuts, st.CoalescerBatches, st.CoalescerRecords, st.PipelineMaxQueue, st.PipelineMeanQueue)
	if reg := dev.Telemetry(); reg != nil {
		if b, err := json.Marshal(reg.Snapshot()); err == nil {
			log.Printf("final telemetry snapshot: %s", b)
		}
	}
}
