// Command kamlcheck is the deterministic model checker for the KAML device:
// it explores seeded schedules (random workloads, concurrency shapes, fault
// plans, power cuts) against the real firmware on a serialized virtual
// clock, checks every recorded history for linearizability, batch
// atomicity, snapshot consistency, and transaction serializability, and
// greedily shrinks any failing scenario to a minimal reproducer.
//
// Explore a seed range:
//
//	go run ./cmd/kamlcheck -seeds 50 -ops 2000
//
// Replay one seed exactly (same seed => byte-identical history):
//
//	go run ./cmd/kamlcheck -seed 17 -ops 2000
//
// Self-test — prove the checker catches an injected atomicity bug:
//
//	go run ./cmd/kamlcheck -bug -seeds 30 -ops 250
//
// Snapshot-isolation mode — hot-key RMW transaction workloads under
// Cache.BeginSI, checked against the SI axioms (lost update, fractured
// read, dirty read, unrepeatable read; write-skew is legal):
//
//	go run ./cmd/kamlcheck -si -seeds 25 -ops 400
//
// SI self-test — disable first-committer-wins validation and prove the
// checker catches the resulting lost update:
//
//	go run ./cmd/kamlcheck -si -bug -seeds 40 -ops 400
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"

	"github.com/kaml-ssd/kaml/internal/check"
)

func main() {
	var (
		seeds   = flag.Int("seeds", 20, "number of seeded scenarios to explore")
		base    = flag.Int64("base", 0, "first seed of the range")
		ops     = flag.Int("ops", 2000, "approximate operations per scenario")
		seed    = flag.Int64("seed", -1, "replay exactly one seed (disables exploration)")
		bug     = flag.Bool("bug", false, "arm a test-only defect: split-batch-commit, or with -si, validation-off lost updates (checker self-test)")
		si      = flag.Bool("si", false, "snapshot-isolation mode: SI transaction workloads checked against the SI axioms")
		shrink  = flag.Bool("shrink", true, "shrink a failing scenario to a minimal reproducer")
		verbose = flag.Bool("v", false, "per-seed progress")
		out     = flag.String("out", "", "on failure, write the failing seed and report to this file (CI artifact)")
	)
	flag.Parse()

	if *seed >= 0 {
		os.Exit(replay(*seed, *ops, *bug, *si, *out, *shrink))
	}

	progress := func(string) {}
	if *verbose {
		progress = func(s string) { fmt.Println(s) }
	}
	explore := check.Explore
	kind := "scenarios"
	if *si {
		explore = check.ExploreSI
		kind = "SI scenarios"
	}
	fail := explore(*base, *seeds, *ops, *bug, progress)
	if fail == nil {
		fmt.Printf("ok: %d %s (seeds %d..%d, ~%d ops each), no violations\n",
			*seeds, kind, *base, *base+int64(*seeds)-1, *ops)
		return
	}
	report(fail, *ops, *bug, *si, *out, *shrink)
	os.Exit(1)
}

func replay(seed int64, ops int, bug, si bool, out string, shrink bool) int {
	gen := check.GenScenario
	if si {
		gen = check.GenSIScenario
	}
	sc := gen(seed, ops, bug)
	res := check.Run(sc)
	fmt.Printf("seed %d: %d events, history sha256=%x\n",
		seed, len(res.Events), sha256.Sum256(res.History))
	if !res.Failed() {
		fmt.Println("ok: no violations")
		return 0
	}
	report(&check.Failure{Scenario: sc, Result: res}, ops, bug, si, out, shrink)
	return 1
}

func report(fail *check.Failure, ops int, bug, si bool, out string, shrink bool) {
	sc, res := fail.Scenario, fail.Result
	fmt.Printf("\nVIOLATION at seed %d:\n%s", sc.Seed, check.FormatViolations(res.Violations))
	if shrink {
		fmt.Println("shrinking...")
		small, sres := check.Shrink(sc, func(s string) { fmt.Println("  " + s) })
		sc, res = small, sres
		fmt.Printf("\nminimal reproducer:\n%s%s", sc, check.FormatViolations(res.Violations))
	}
	repro := fmt.Sprintf("go run ./cmd/kamlcheck -seed %d -ops %d", sc.Seed, ops)
	if si {
		repro += " -si"
	}
	if bug {
		repro += " -bug"
	}
	fmt.Printf("\nreproduce with: %s\n", repro)
	if out != "" {
		artifact := fmt.Sprintf("seed=%d ops=%d bug=%v si=%v\n\n%s\n%s\nreproduce with: %s\n",
			sc.Seed, ops, bug, si, sc, check.FormatViolations(res.Violations), repro)
		if err := os.WriteFile(out, []byte(artifact), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", out, err)
		} else {
			fmt.Printf("failing-seed artifact written to %s\n", out)
		}
	}
}
