// Command kamlcli is an interactive shell for a simulated KAML SSD:
// create namespaces, put and get records, run transactions through the
// caching layer, and inspect device statistics.
//
//	$ kamlcli
//	kaml> create 1000
//	namespace 1
//	kaml> put 1 42 hello-world
//	ok (23.0µs device time)
//	kaml> get 1 42
//	hello-world
//	kaml> txn 1 begin
//	kaml> txn 1 update 1 42 newer
//	kaml> txn 1 commit
//	kaml> stats
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	kaml "github.com/kaml-ssd/kaml"
)

func main() {
	dev, err := kaml.Open(kaml.SmallOptions())
	if err != nil {
		fmt.Fprintf(os.Stderr, "open device: %v\n", err)
		os.Exit(1)
	}
	cache := dev.NewCache(kaml.CacheOptions{CapacityBytes: 32 << 20, RecordsPerLock: 1})
	txns := map[string]*kaml.Txn{}

	fmt.Println("KAML interactive shell — type 'help' for commands")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("kaml> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) > 0 {
			if fields[0] == "quit" || fields[0] == "exit" {
				break
			}
			run(dev, cache, txns, fields)
		}
		fmt.Print("kaml> ")
	}
	done := make(chan struct{})
	dev.Go(func() { defer close(done); dev.Close() })
	<-done
}

// run executes one command on the device's simulated clock.
func run(dev *kaml.Device, cache *kaml.Cache, txns map[string]*kaml.Txn, fields []string) {
	done := make(chan struct{})
	dev.Go(func() {
		defer close(done)
		start := dev.Now()
		switch fields[0] {
		case "help":
			fmt.Println(`commands:
  create <expectedKeys>          create a namespace
  put <ns> <key> <value>         store a record
  get <ns> <key>                 fetch a record
  del-ns <ns>                    delete a namespace
  snapshot <ns>                  create a read-only snapshot
  logs <ns> <n>                  tune the namespace's log count
  txn <name> begin               start a transaction on the caching layer
  txn <name> read <ns> <key>
  txn <name> update <ns> <key> <value>
  txn <name> commit | abort
  stats                          device counters
  quit`)
		case "create":
			expected := 1024
			if len(fields) > 1 {
				expected, _ = strconv.Atoi(fields[1])
			}
			ns, err := dev.CreateNamespace(kaml.NamespaceOptions{ExpectedKeys: expected})
			report(err, func() { fmt.Printf("namespace %d", ns) })
		case "put":
			if !need(fields, 4, "put <ns> <key> <value>") {
				return
			}
			ns, key := parseNSKey(fields[1], fields[2])
			err := dev.Put(ns, key, []byte(strings.Join(fields[3:], " ")))
			report(err, func() { fmt.Printf("ok (%v device time)", dev.Now()-start) })
		case "get":
			if !need(fields, 3, "get <ns> <key>") {
				return
			}
			ns, key := parseNSKey(fields[1], fields[2])
			v, err := dev.Get(ns, key)
			report(err, func() { fmt.Printf("%s", v) })
		case "snapshot":
			if !need(fields, 2, "snapshot <ns>") {
				return
			}
			ns, _ := parseNSKey(fields[1], "0")
			snap, err := dev.Snapshot(ns)
			report(err, func() { fmt.Printf("snapshot namespace %d", snap) })
		case "del-ns":
			if !need(fields, 2, "del-ns <ns>") {
				return
			}
			ns, _ := parseNSKey(fields[1], "0")
			report(dev.DeleteNamespace(ns), func() { fmt.Print("ok") })
		case "logs":
			if !need(fields, 3, "logs <ns> <n>") {
				return
			}
			ns, _ := parseNSKey(fields[1], "0")
			n, _ := strconv.Atoi(fields[2])
			report(dev.TuneNamespaceLogs(ns, n), func() { fmt.Print("ok") })
		case "txn":
			runTxn(cache, txns, fields)
		case "stats":
			st := dev.Stats()
			fmt.Printf("puts=%d gets=%d records=%d nvram_hits=%d programs=%d gc_copies=%d gc_erases=%d write_amp=%.2f",
				st.Puts, st.Gets, st.PutRecords, st.NVRAMHits, st.Programs, st.GCCopies, st.GCErases,
				writeAmp(st))
		default:
			fmt.Printf("unknown command %q (try 'help')", fields[0])
		}
	})
	<-done
	fmt.Println()
}

func runTxn(cache *kaml.Cache, txns map[string]*kaml.Txn, fields []string) {
	if !need(fields, 3, "txn <name> <begin|read|update|commit|abort> ...") {
		return
	}
	name, op := fields[1], fields[2]
	tx := txns[name]
	switch op {
	case "begin":
		txns[name] = cache.Begin()
		fmt.Print("ok")
	case "read":
		if tx == nil || !need(fields, 5, "txn <name> read <ns> <key>") {
			fmt.Print("no such transaction or bad args")
			return
		}
		ns, key := parseNSKey(fields[3], fields[4])
		v, err := tx.Read(ns, key)
		report(err, func() { fmt.Printf("%s", v) })
	case "update":
		if tx == nil || !need(fields, 6, "txn <name> update <ns> <key> <value>") {
			fmt.Print("no such transaction or bad args")
			return
		}
		ns, key := parseNSKey(fields[3], fields[4])
		report(tx.Update(ns, key, []byte(strings.Join(fields[5:], " "))), func() { fmt.Print("ok") })
	case "commit":
		if tx == nil {
			fmt.Print("no such transaction")
			return
		}
		report(tx.Commit(), func() { fmt.Print("committed") })
		tx.Free()
		delete(txns, name)
	case "abort":
		if tx == nil {
			fmt.Print("no such transaction")
			return
		}
		tx.Abort()
		tx.Free()
		delete(txns, name)
		fmt.Print("aborted")
	default:
		fmt.Printf("unknown txn op %q", op)
	}
}

func parseNSKey(nss, keys string) (kaml.Namespace, uint64) {
	ns, _ := strconv.ParseUint(nss, 10, 32)
	key, _ := strconv.ParseUint(keys, 10, 64)
	return kaml.Namespace(ns), key
}

func need(fields []string, n int, usage string) bool {
	if len(fields) < n {
		fmt.Printf("usage: %s", usage)
		return false
	}
	return true
}

func report(err error, ok func()) {
	if err != nil {
		fmt.Printf("error: %v", err)
		return
	}
	ok()
}

func writeAmp(st kaml.Stats) float64 {
	if st.BytesWritten == 0 {
		return 0
	}
	return float64(st.FlashBytesWritten) / float64(st.BytesWritten)
}
