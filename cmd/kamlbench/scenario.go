package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/kaml-ssd/kaml/internal/traffic"
	"github.com/kaml-ssd/kaml/scenarios"
)

// loadScenario resolves -scenario's argument: the name of an embedded
// scenario (see scenarios/) or a path to a scenario JSON file.
func loadScenario(arg string) (*traffic.Scenario, error) {
	if strings.ContainsAny(arg, "/\\.") {
		blob, err := os.ReadFile(arg)
		if err != nil {
			return nil, err
		}
		return traffic.Parse(blob)
	}
	return scenarios.Load(arg)
}

// runScenario executes one traffic scenario and renders its report.
// Returns the process exit code: 0 when every assertion passed, 1 with
// the first failing assertion named on stderr otherwise. With jsonPath
// set, the canonical report bytes (the golden-file format) are written
// there ("-" = stdout).
func runScenario(arg, jsonPath string, stdout, stderr io.Writer) int {
	sc, err := loadScenario(arg)
	if err != nil {
		fmt.Fprintf(stderr, "scenario %s: %v\n", arg, err)
		return 2
	}
	rep, err := traffic.Run(sc)
	if err != nil {
		fmt.Fprintf(stderr, "scenario %s: %v\n", arg, err)
		return 2
	}

	if jsonPath == "-" {
		if _, err := stdout.Write(rep.Canonical()); err != nil {
			fmt.Fprintf(stderr, "write report: %v\n", err)
			return 2
		}
	} else {
		renderScenarioReport(stdout, rep)
		if jsonPath != "" {
			if err := os.WriteFile(jsonPath, rep.Canonical(), 0o644); err != nil {
				fmt.Fprintf(stderr, "write %s: %v\n", jsonPath, err)
				return 2
			}
		}
	}

	if !rep.Passed {
		a, _ := rep.FirstFailure()
		fmt.Fprintf(stderr, "FAIL %s: assertion %s: %s\n", rep.Scenario, a.Name, a.Detail)
		fmt.Fprintf(stderr, "reproduce: kamlbench -scenario %s   (seed %d is part of the scenario file)\n", arg, rep.Seed)
		return 1
	}
	return 0
}

// renderScenarioReport prints the human-readable per-phase table and the
// assertion verdicts.
func renderScenarioReport(w io.Writer, rep *traffic.Report) {
	fmt.Fprintf(w, "scenario %s (seed %d, target %s): %dms of virtual time\n\n",
		rep.Scenario, rep.Seed, rep.Target, rep.DurationMS)
	fmt.Fprintf(w, "%-12s %9s %9s %7s %7s %9s %9s %9s\n",
		"phase", "issued", "errors", "txns", "aborts", "p50µs", "p95µs", "p99µs")
	for _, ph := range rep.Phases {
		fmt.Fprintf(w, "%-12s %9d %9d %7d %7d %9d %9d %9d\n",
			ph.Name, ph.OpsIssued, ph.Errors, ph.TxnsCommitted, ph.TxnsAborted,
			ph.LatencyUS.P50, ph.LatencyUS.P95, ph.LatencyUS.P99)
	}
	f := rep.Final
	fmt.Fprintf(w, "\nfinal: %d acked writes, %d maybe; %d power cuts, %d recoveries (%d failed)",
		f.AckedWrites, f.MaybeWrites, f.PowerCuts, f.Recoveries, f.RecoveryFailures)
	if rep.Target == "cluster" {
		fmt.Fprintf(w, "; %d failovers, %d/%d shards live", f.Failovers, f.ShardsLive, f.ShardsTotal)
	}
	fmt.Fprintf(w, "; %d sampled events\n\n", f.SampledEvents)
	for _, a := range rep.Assertions {
		mark := "ok  "
		if !a.Passed {
			mark = "FAIL"
		}
		fmt.Fprintf(w, "  %s %-36s %s\n", mark, a.Name, a.Detail)
	}
	for _, d := range f.ViolationDetails {
		fmt.Fprintf(w, "  !! %s\n", d)
	}
}
