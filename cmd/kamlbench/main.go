// Command kamlbench regenerates the KAML paper's evaluation tables and
// figures (HPCA 2017, §V) on the simulated systems in this repository.
//
// Usage:
//
//	kamlbench                  # run everything at the default scale
//	kamlbench -run fig5,fig9   # specific experiments
//	kamlbench -scale 2         # larger working sets / longer windows
//	kamlbench -parallel 8      # figure-cell worker pool (default GOMAXPROCS)
//	kamlbench -json out.json   # also write the tables as JSON ("-" = stdout)
//	kamlbench -cpuprofile cpu.pprof -memprofile mem.pprof
//	kamlbench -list            # list experiment IDs and scenarios
//
//	kamlbench -scenario diurnal              # embedded acceptance scenario
//	kamlbench -scenario path/to/custom.json  # scenario file on disk
//	kamlbench -scenario diurnal -json -      # canonical report JSON on stdout
//
// Experiment IDs: fig5 fig6 fig7 fig8 fig9 fig10 conflicts ablations qdsweep
// sisweep getscale kamlcluster
//
// Scenario mode replays a declarative production-traffic scenario
// (phased arrival curves, hot-key storms, fault ramps, power cuts, node
// kills, live rebalancing) against the simulated device or cluster in
// virtual time and evaluates the scenario's assertion block. The exit
// code is 0 when every assertion holds and 1 otherwise, with the first
// failing assertion named on stderr.
//
// Each figure cell is an independent simulation on its own virtual clock,
// so -parallel changes wall-clock time only: the tables are identical at
// any worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/kaml-ssd/kaml/internal/experiments"
	"github.com/kaml-ssd/kaml/internal/telemetry"
	"github.com/kaml-ssd/kaml/scenarios"
)

type experiment struct {
	id   string
	desc string
	run  func(experiments.Scale) []*experiments.Table
}

func catalog() []experiment {
	wrap1 := func(f func(experiments.Scale) *experiments.Table) func(experiments.Scale) []*experiments.Table {
		return func(s experiments.Scale) []*experiments.Table {
			return []*experiments.Table{f(s)}
		}
	}
	return []experiment{
		{"fig5", "bandwidth: Get/Put vs read/write (Fetch, Update, Insert)", experiments.Fig5},
		{"fig6", "latency: Get/Put vs read/write", experiments.Fig6},
		{"fig7", "effect of Put batch size", experiments.Fig7},
		{"fig8", "effect of number of logs", wrap1(experiments.Fig8)},
		{"fig9", "OLTP: TPC-B and TPC-C, KAML vs Shore-MT", wrap1(experiments.Fig9)},
		{"fig10", "YCSB A/B/C/D/F, KAML vs Shore-MT", wrap1(experiments.Fig10)},
		{"conflicts", "locking-granularity conflict analysis (§V-D.2)", wrap1(experiments.Conflicts)},
		{"ablations", "extra ablations: checkpoint interference, lock-granularity sweep, write amplification", experiments.Ablations},
		{"qdsweep", "queue-depth sweep: pipelined Get/Put scaling and Put coalescing", wrap1(experiments.QDSweep)},
		{"sisweep", "isolation sweep: SS2PL vs snapshot isolation, hot-key RMW abort rate and reader coexistence", experiments.SISweep},
		{"getscale", "concurrent Get scaling: wall-clock gets/s and allocs per Get vs reader count", wrap1(experiments.GetScale)},
		{"kamlcluster", "sharded replicated cluster: per-shard Get SLO with hedged reads, live migration, forced failover", wrap1(experiments.KamlCluster)},
		{"traffic", "production traffic scenarios: all checked-in scenarios with per-phase stats and assertion verdicts", wrap1(experiments.TrafficScenarios)},
	}
}

// jsonExperiment is one experiment's results in the -json report.
type jsonExperiment struct {
	ID          string               `json:"id"`
	Description string               `json:"description"`
	WallSeconds float64              `json:"wall_seconds"`
	WallMS      float64              `json:"wall_ms"`
	AllocsPerOp float64              `json:"allocs_per_op"`
	Tables      []*experiments.Table `json:"tables"`

	// Telemetry merges the registries of every device the experiment
	// created (one per figure cell). Present only with -json.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Scale       float64          `json:"scale"`
	Parallel    int              `json:"parallel"`
	Cores       int              `json:"cores"`
	Experiments []jsonExperiment `json:"experiments"`
}

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	scale := flag.Float64("scale", 1.0, "working-set / window scale factor")
	parallel := flag.Int("parallel", 0, "figure-cell worker pool size (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write experiment tables as JSON to this path (\"-\" = stdout)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this path at exit")
	list := flag.Bool("list", false, "list experiment IDs and scenarios, then exit")
	scenario := flag.String("scenario", "", "run a traffic scenario (embedded name or JSON file path) instead of experiments")
	flag.Parse()

	cat := catalog()
	if *list {
		fmt.Println("experiments:")
		for _, e := range cat {
			fmt.Printf("  %-12s %s\n", e.id, e.desc)
		}
		fmt.Println("\nscenarios (-scenario <name>):")
		for _, name := range scenarios.Names() {
			desc := ""
			if sc, err := scenarios.Load(name); err == nil {
				desc = sc.Description
			}
			fmt.Printf("  %-16s %s\n", name, desc)
		}
		return
	}

	if *scenario != "" {
		os.Exit(runScenario(*scenario, *jsonPath, os.Stdout, os.Stderr))
	}

	experiments.SetParallelism(*parallel)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", *cpuProfile, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "start cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	want := map[string]bool{}
	if *runFlag != "" {
		for _, id := range strings.Split(*runFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
		for id := range want {
			found := false
			for _, e := range cat {
				if e.id == id {
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
		}
	}

	// With -json, merge every device registry an experiment creates into
	// its report entry so the artifact embeds the pipeline/GC telemetry.
	if *jsonPath != "" {
		telemetry.CollectGlobal(true)
		defer telemetry.CollectGlobal(false)
	}

	report := jsonReport{
		Scale:    *scale,
		Parallel: experiments.Parallelism(),
		Cores:    runtime.NumCPU(),
	}
	for _, e := range cat {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("--- running %s (%s) ---\n", e.id, e.desc)
		telemetry.ResetGlobal()
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)
		ops0 := experiments.OpsCompleted()
		start := time.Now()
		tables := e.run(experiments.Scale(*scale))
		for _, tb := range tables {
			fmt.Println(tb.Render())
		}
		elapsed := time.Since(start)
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		allocsPerOp := 0.0
		if ops := experiments.OpsCompleted() - ops0; ops > 0 {
			allocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(ops)
		}
		fmt.Printf("(%s took %.1fs wall-clock, %.0f allocs/op)\n\n",
			e.id, elapsed.Seconds(), allocsPerOp)
		je := jsonExperiment{
			ID: e.id, Description: e.desc,
			WallSeconds: elapsed.Seconds(),
			WallMS:      float64(elapsed.Microseconds()) / 1000,
			AllocsPerOp: allocsPerOp,
			Tables:      tables,
		}
		if *jsonPath != "" {
			je.Telemetry = telemetry.GlobalSnapshot()
		}
		report.Experiments = append(report.Experiments, je)
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encode json: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(blob)
		} else if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", *memProfile, err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "write heap profile: %v\n", err)
			os.Exit(1)
		}
	}
}
