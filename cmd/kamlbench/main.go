// Command kamlbench regenerates the KAML paper's evaluation tables and
// figures (HPCA 2017, §V) on the simulated systems in this repository.
//
// Usage:
//
//	kamlbench                  # run everything at the default scale
//	kamlbench -run fig5,fig9   # specific experiments
//	kamlbench -scale 2         # larger working sets / longer windows
//	kamlbench -json out.json   # also write the tables as JSON ("-" = stdout)
//	kamlbench -list            # list experiment IDs
//
// Experiment IDs: fig5 fig6 fig7 fig8 fig9 fig10 conflicts
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/kaml-ssd/kaml/internal/experiments"
)

type experiment struct {
	id   string
	desc string
	run  func(experiments.Scale) []*experiments.Table
}

func catalog() []experiment {
	wrap1 := func(f func(experiments.Scale) *experiments.Table) func(experiments.Scale) []*experiments.Table {
		return func(s experiments.Scale) []*experiments.Table {
			return []*experiments.Table{f(s)}
		}
	}
	return []experiment{
		{"fig5", "bandwidth: Get/Put vs read/write (Fetch, Update, Insert)", experiments.Fig5},
		{"fig6", "latency: Get/Put vs read/write", experiments.Fig6},
		{"fig7", "effect of Put batch size", experiments.Fig7},
		{"fig8", "effect of number of logs", wrap1(experiments.Fig8)},
		{"fig9", "OLTP: TPC-B and TPC-C, KAML vs Shore-MT", wrap1(experiments.Fig9)},
		{"fig10", "YCSB A/B/C/D/F, KAML vs Shore-MT", wrap1(experiments.Fig10)},
		{"conflicts", "locking-granularity conflict analysis (§V-D.2)", wrap1(experiments.Conflicts)},
		{"ablations", "extra ablations: checkpoint interference, lock-granularity sweep, write amplification", experiments.Ablations},
	}
}

// jsonExperiment is one experiment's results in the -json report.
type jsonExperiment struct {
	ID          string                `json:"id"`
	Description string                `json:"description"`
	WallSeconds float64               `json:"wall_seconds"`
	Tables      []*experiments.Table  `json:"tables"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Scale       float64          `json:"scale"`
	Experiments []jsonExperiment `json:"experiments"`
}

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	scale := flag.Float64("scale", 1.0, "working-set / window scale factor")
	jsonPath := flag.String("json", "", "write experiment tables as JSON to this path (\"-\" = stdout)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	cat := catalog()
	if *list {
		for _, e := range cat {
			fmt.Printf("%-10s %s\n", e.id, e.desc)
		}
		return
	}

	want := map[string]bool{}
	if *runFlag != "" {
		for _, id := range strings.Split(*runFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
		for id := range want {
			found := false
			for _, e := range cat {
				if e.id == id {
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
		}
	}

	report := jsonReport{Scale: *scale}
	for _, e := range cat {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("--- running %s (%s) ---\n", e.id, e.desc)
		start := time.Now()
		tables := e.run(experiments.Scale(*scale))
		for _, tb := range tables {
			fmt.Println(tb.Render())
		}
		elapsed := time.Since(start).Seconds()
		fmt.Printf("(%s took %.1fs wall-clock)\n\n", e.id, elapsed)
		report.Experiments = append(report.Experiments, jsonExperiment{
			ID: e.id, Description: e.desc, WallSeconds: elapsed, Tables: tables,
		})
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encode json: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(blob)
		} else if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
}
