package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/kaml-ssd/kaml/scenarios"
)

// TestRunScenarioBrokenSLOExitsNonZero drives the full CLI path with the
// deliberately unachievable fixture: exit code 1 and the failing
// assertion named on stderr.
func TestRunScenarioBrokenSLOExitsNonZero(t *testing.T) {
	fixture := filepath.Join("..", "..", "internal", "traffic", "testdata", "broken-slo.json")
	var stdout, stderr bytes.Buffer
	code := runScenario(fixture, "", &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "phase[burst].p99_us") {
		t.Fatalf("stderr does not name the failing assertion:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "FAIL") {
		t.Fatalf("stdout table does not mark the failed assertion:\n%s", stdout.String())
	}
}

// TestRunScenarioEmbeddedPassesAndMatchesGolden runs an embedded
// scenario by name with -json - and checks the emitted bytes against the
// checked-in golden report.
func TestRunScenarioEmbeddedPassesAndMatchesGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := runScenario("diurnal", "-", &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, want 0\nstderr: %s", code, stderr.String())
	}
	want := scenarios.Golden("diurnal")
	if want == nil {
		t.Fatal("no golden report for diurnal")
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Fatalf("-json - output drifted from scenarios/golden/diurnal.report.json")
	}
}

// TestRunScenarioJSONFile writes the report to a file and renders the
// human table on stdout at the same time.
func TestRunScenarioJSONFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "rep.json")
	var stdout, stderr bytes.Buffer
	code := runScenario("flash-aging", out, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, want 0\nstderr: %s", code, stderr.String())
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if want := scenarios.Golden("flash-aging"); !bytes.Equal(blob, want) {
		t.Fatal("written report drifted from golden")
	}
	if !strings.Contains(stdout.String(), "scenario flash-aging") {
		t.Fatalf("human summary missing:\n%s", stdout.String())
	}
}

// TestRunScenarioUnknown exercises the load-error path: exit 2, no run.
func TestRunScenarioUnknown(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := runScenario("no-such-scenario", "", &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if code := runScenario(filepath.Join(t.TempDir(), "missing.json"), "", &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d for missing file, want 2", code)
	}
}
