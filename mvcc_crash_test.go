package kaml_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	kaml "github.com/kaml-ssd/kaml"
)

// MVCC crash torture: 50 seeded fault plans cut power at arbitrary points
// of an overwrite-heavy workload running above a durable snapshot — before
// a batch's NVRAM commit, between the NVRAM commit and the version-chain
// install, or mid-flash-flush. After every recovery the snapshot must still
// serve exactly its creation-time versions (the chain rebuild must select
// the pre-commit version at the snapshot's pin), and the root namespace
// must serve exactly the last acknowledged value per key.

const mvccTortureKeys = 24

func mvccVal(seed int64, gen int, key uint64) []byte {
	v := make([]byte, 32)
	v[0], v[1], v[2] = byte(seed), byte(gen), byte(key)
	for i := 3; i < len(v); i++ {
		v[i] = byte(int(key)*31 + gen*7 + i)
	}
	return v
}

func TestMVCCSnapshotCrashTorture(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		t.Run(fmt.Sprintf("seed=%02d", seed), func(t *testing.T) {
			runMVCCTortureSeed(t, seed)
		})
	}
}

func runMVCCTortureSeed(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))

	// The base generation plus the snapshot program ~30 pages; the
	// overwrite storm programs a few hundred more. Spread the cuts so some
	// land during the base write, many inside the overwrite storm (where
	// snapshot-pinned versions are at stake), and some during recovery.
	plan := &kaml.FaultPlan{Seed: seed, CutAfterPrograms: 10 + rng.Intn(120)}
	if seed%3 == 1 {
		plan.TornPageOnCut = true
	}
	if seed%6 == 2 {
		plan.CutAfterPrograms = 0
		plan.CutAtTime = time.Duration(1+rng.Intn(30)) * time.Millisecond
	}
	opts := kaml.SmallOptions()
	opts.Faults = plan

	dev, err := kaml.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	var failure error
	dev.Go(func() {
		failure = mvccTortureRun(dev, rng, seed)
	})
	dev.Wait()
	if failure != nil {
		t.Fatal(failure)
	}
}

func mvccTortureRun(dev *kaml.Device, rng *rand.Rand, seed int64) error {
	ns, err := dev.CreateNamespace(kaml.NamespaceOptions{ExpectedKeys: 2 * mvccTortureKeys})
	if err != nil {
		return err
	}

	expected := make(map[uint64][]byte) // root: last acknowledged value
	var snap kaml.Namespace
	var snapVals map[uint64][]byte // frozen view the snapshot must serve

	// verify checks both views against their models. The snapshot check is
	// the heart of the test: its versions were overwritten many times and
	// survive only through the version chains the recovery rebuilt.
	verify := func(d *kaml.Device) error {
		for k := uint64(0); k < mvccTortureKeys; k++ {
			want, ok := expected[k]
			got, gerr := d.Get(ns, k)
			if !ok {
				if errors.Is(gerr, kaml.ErrKeyNotFound) {
					continue
				}
				if gerr != nil {
					return fmt.Errorf("root key %d: %w", k, gerr)
				}
				return fmt.Errorf("root key %d never committed, yet Get succeeded (%d bytes)", k, len(got))
			}
			if gerr != nil {
				return fmt.Errorf("root key %d: %w", k, gerr)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("root key %d: wrong value after recovery", k)
			}
		}
		if snapVals == nil {
			return nil
		}
		for k := uint64(0); k < mvccTortureKeys; k++ {
			want, ok := snapVals[k]
			got, gerr := d.Get(snap, k)
			if !ok {
				if errors.Is(gerr, kaml.ErrKeyNotFound) {
					continue
				}
				if gerr != nil {
					return fmt.Errorf("snapshot key %d: %w", k, gerr)
				}
				return fmt.Errorf("snapshot key %d absent at snapshot time, yet Get succeeded (%d bytes)", k, len(got))
			}
			if gerr != nil {
				return fmt.Errorf("snapshot key %d: %w", k, gerr)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("snapshot key %d: snapshot-time version lost (got gen %d, want gen %d)",
					k, got[1], want[1])
			}
		}
		return nil
	}

	recoverVerified := func(d *kaml.Device) (*kaml.Device, error) {
		for round := 0; ; round++ {
			img := d.Crash()
			var re *kaml.Device
			var rerr error
			for attempt := 0; attempt < 4; attempt++ {
				if re, rerr = kaml.Reopen(img); rerr == nil {
					break
				}
			}
			if rerr != nil {
				return nil, fmt.Errorf("reopen: %w", rerr)
			}
			verr := verify(re)
			if verr == nil {
				return re, nil
			}
			if !errors.Is(verr, kaml.ErrPowerLoss) || round >= 3 {
				return nil, verr
			}
			d = re // cut struck between recovery and verification; go again
		}
	}

	// put routes through Put or a small batch, modeling acknowledgments
	// exactly like the base torture test: only acked writes enter expected.
	cut := false
	put := func(gen int, keys ...uint64) error {
		recs := make([]kaml.Record, len(keys))
		for i, k := range keys {
			recs[i] = kaml.Record{Namespace: ns, Key: k, Value: mvccVal(seed, gen, k)}
		}
		var perr error
		if len(recs) == 1 {
			perr = dev.Put(ns, keys[0], recs[0].Value)
		} else {
			perr = dev.PutBatch(recs)
		}
		switch {
		case perr == nil:
			for _, r := range recs {
				expected[r.Key] = r.Value
			}
			return nil
		case errors.Is(perr, kaml.ErrPowerLoss):
			cut = true
			return nil
		default:
			return fmt.Errorf("gen %d put %v: %w", gen, keys, perr)
		}
	}

	// Phase 1: base generation, then the durable snapshot.
	for k := uint64(0); k < mvccTortureKeys && !cut; k++ {
		if err := put(0, k); err != nil {
			return err
		}
	}
	if !cut {
		s, serr := dev.Snapshot(ns)
		switch {
		case serr == nil:
			snap = s
			snapVals = make(map[uint64][]byte, len(expected))
			for k, v := range expected {
				snapVals[k] = v
			}
		case errors.Is(serr, kaml.ErrPowerLoss):
			cut = true
		default:
			return fmt.Errorf("snapshot: %w", serr)
		}
	}

	// Phase 2: overwrite storm above the snapshot — single puts and small
	// batches, many generations deep, until the cut (or the storm ends and
	// we cut by crashing anyway).
	for gen := 1; gen <= 12 && !cut; gen++ {
		for k := uint64(0); k < mvccTortureKeys && !cut; k++ {
			if rng.Intn(4) == 0 {
				k2 := (k + 1 + uint64(rng.Intn(mvccTortureKeys-1))) % mvccTortureKeys
				if err := put(gen, k, k2); err != nil {
					return err
				}
			} else if err := put(gen, k); err != nil {
				return err
			}
		}
	}

	// Phase 3: crash (power already cut or not), recover, verify both the
	// root and the snapshot's frozen view.
	re, err := recoverVerified(dev)
	if err != nil {
		return err
	}

	// Phase 4: the recovered device keeps version semantics: more
	// overwrites must not disturb the snapshot, and a second crash+recovery
	// (exercising blocks the first recovery padded) must preserve it too.
	dev = re
	cut = false
	for i := 0; i < 30 && !cut; i++ {
		if err := put(100+i, uint64(rng.Intn(mvccTortureKeys))); err != nil {
			return err
		}
	}
	if err := verify(dev); err != nil && !errors.Is(err, kaml.ErrPowerLoss) {
		return fmt.Errorf("after post-recovery writes: %w", err)
	}
	re2, err := recoverVerified(dev)
	if err != nil {
		return fmt.Errorf("second recovery: %w", err)
	}
	re2.Close()
	return nil
}
