// Package kaml is a from-scratch reproduction of the key-addressable,
// multi-log SSD from "KAML: A Flexible, High-Performance Key-Value SSD"
// (HPCA 2017), together with everything its evaluation needs: a NAND flash
// array simulator with realistic timing, an NVMe-like transport, the KAML
// firmware (namespaces, multi-log flash management, atomic multi-record
// Put, GC and wear leveling), the host caching layer with SS2PL
// transactions, a conventional block-SSD baseline, and a Shore-MT-style
// ARIES storage engine for comparison.
//
// Everything runs on a deterministic virtual clock: operations cost
// simulated time derived from flash and transport models rather than wall
// time, so experiments are fast and exactly reproducible. The one usage
// rule this imposes: all calls into the device or the transaction layer
// must happen on a simulation actor — start one with Device.Go and wait
// with Device.Wait (see the examples/ directory).
//
// # Quick start
//
//	dev, _ := kaml.Open(kaml.DefaultOptions())
//	dev.Go(func() {
//	    defer dev.Close()
//	    ns, _ := dev.CreateNamespace(kaml.NamespaceOptions{})
//	    _ = dev.Put(ns, 42, []byte("hello"))
//	    v, _ := dev.Get(ns, 42)
//	    fmt.Printf("%s\n", v)
//	})
//	dev.Wait()
//
// For transactions, wrap the device in a Cache (the paper's caching
// layer) and use Begin/Read/Update/Insert/Commit.
package kaml

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/kaml-ssd/kaml/internal/cache"
	"github.com/kaml-ssd/kaml/internal/cmdq"
	"github.com/kaml-ssd/kaml/internal/faultinject"
	"github.com/kaml-ssd/kaml/internal/flash"
	"github.com/kaml-ssd/kaml/internal/kamlssd"
	"github.com/kaml-ssd/kaml/internal/nvme"
	"github.com/kaml-ssd/kaml/internal/sim"
	"github.com/kaml-ssd/kaml/internal/storage"
	"github.com/kaml-ssd/kaml/internal/telemetry"
)

// Errors surfaced by the public API.
var (
	// ErrKeyNotFound reports a Get of an absent key.
	ErrKeyNotFound = kamlssd.ErrKeyNotFound
	// ErrNoNamespace reports an operation on an unknown namespace.
	ErrNoNamespace = kamlssd.ErrNoNamespace
	// ErrValueTooLarge reports a value exceeding one flash page.
	ErrValueTooLarge = kamlssd.ErrValueTooLarge
	// ErrReadOnly reports a Put against a snapshot namespace.
	ErrReadOnly = kamlssd.ErrReadOnly
	// ErrPowerLoss reports an operation interrupted by a power cut. A Put
	// returning it was NOT acknowledged: after Reopen the batch is absent.
	ErrPowerLoss = kamlssd.ErrPowerLoss
	// ErrClosed reports an operation submitted after Close.
	ErrClosed = kamlssd.ErrClosed
	// ErrEmptyBatch reports a PutBatch with no records; an empty atomic
	// write is almost always a caller bug, so it is rejected rather than
	// trivially acknowledged.
	ErrEmptyBatch = errors.New("kaml: empty batch")
	// ErrDuplicateKey reports a PutBatch naming the same (namespace, key)
	// twice. The firmware cannot order two writes to one key within a
	// single atomic batch, so the batch is rejected before submission.
	ErrDuplicateKey = errors.New("kaml: duplicate key in batch")
	// ErrTxnAborted reports a transaction killed by concurrency control;
	// retry it.
	ErrTxnAborted = storage.ErrAborted
	// ErrTxnNotFoundKey reports a transactional read of an absent key.
	ErrTxnNotFoundKey = storage.ErrNotFound
)

// Options configure a simulated KAML SSD.
type Options struct {
	// Flash selects the array geometry and timing.
	Flash flash.Config
	// Transport selects NVMe-layer latencies and controller resources.
	Transport nvme.Config
	// Firmware tunes the KAML FTL (log count, GC watermarks, ...).
	Firmware kamlssd.Config
	// Faults, when non-nil, installs a deterministic fault plan on the
	// flash array: seeded per-operation failure probabilities and/or a
	// power cut at a chosen point. Crash-consistency tests sweep its seed.
	Faults *FaultPlan
	// Engine, when non-nil, runs the device on an existing virtual clock
	// instead of a fresh one. The model checker uses this to serialize the
	// engine (sim.Engine.Serialize) before Open and to run Open itself on a
	// simulation actor, which makes the whole device lifecycle — including
	// the background actors Open spawns — deterministic for a given seed.
	Engine *sim.Engine
}

// FaultPlan mirrors the fault-injection configuration (see
// internal/faultinject): seeded probabilities for read/program/erase
// failures plus an optional deterministic power cut.
type FaultPlan struct {
	// Seed initializes the plan's PRNG for probability draws.
	Seed int64
	// Per-operation failure probabilities in [0, 1].
	ReadFailProb    float64
	ProgramFailProb float64
	EraseFailProb   float64
	// CutAfterPrograms > 0 cuts power on the Nth flash program attempt.
	CutAfterPrograms int
	// CutAtTime > 0 cuts power at the first flash operation at or after
	// the given virtual time.
	CutAtTime time.Duration
	// TornPageOnCut makes a program-triggered cut leave a torn page.
	TornPageOnCut bool
}

// DefaultOptions mirrors the paper's board: 16 channels x 4 chips, 8 KB
// pages, 16 logs.
func DefaultOptions() Options {
	fc := flash.DefaultConfig()
	return Options{
		Flash:     fc,
		Transport: nvme.DefaultConfig(),
		Firmware:  kamlssd.DefaultConfig(fc),
	}
}

// SmallOptions returns a scaled-down device that builds and churns quickly
// in tests and examples.
func SmallOptions() Options {
	fc := flash.DefaultConfig()
	fc.Channels = 4
	fc.ChipsPerChannel = 2
	fc.BlocksPerChip = 32
	fc.PagesPerBlock = 16
	fw := kamlssd.DefaultConfig(fc)
	fw.NumLogs = 4
	return Options{Flash: fc, Transport: nvme.DefaultConfig(), Firmware: fw}
}

// Op identifies one public-API operation kind as observed by a HistoryTap.
type Op uint8

// Operation kinds reported to HistoryTap.OpInvoked.
const (
	OpGet Op = iota + 1
	OpPut
	OpPutBatch
	OpSnapshot
	OpTuneLogs
	OpCrash
	OpReopen
	OpTxnRead
	OpTxnUpdate
	OpTxnInsert
	OpTxnCommit
	OpTxnAbort
)

// String names the operation kind.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "Get"
	case OpPut:
		return "Put"
	case OpPutBatch:
		return "PutBatch"
	case OpSnapshot:
		return "Snapshot"
	case OpTuneLogs:
		return "TuneLogs"
	case OpCrash:
		return "Crash"
	case OpReopen:
		return "Reopen"
	case OpTxnRead:
		return "TxnRead"
	case OpTxnUpdate:
		return "TxnUpdate"
	case OpTxnInsert:
		return "TxnInsert"
	case OpTxnCommit:
		return "TxnCommit"
	case OpTxnAbort:
		return "TxnAbort"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// HistoryTap observes the invocation and completion of every public-API
// operation on a Device (and on transactions of its Caches). The model
// checker implements it to record a timestamped operation history; see
// internal/check.
//
// OpInvoked is called before the operation starts and returns an opaque ID;
// OpCompleted is called with that ID when the caller observes the result.
// For Get and TxnRead, value is the value returned to the caller; for
// Snapshot, ns is the created snapshot's ID; for TuneLogs, the single
// record's Key field carries the requested log count. txn is 0 for
// non-transactional operations, else the handle returned by TxnBegan.
//
// Install a tap with SetHistoryTap before issuing operations and do not
// change it while operations are in flight; implementations must be safe
// for concurrent use by many actors.
type HistoryTap interface {
	OpInvoked(op Op, txn uint64, records []Record) uint64
	OpCompleted(id uint64, ns Namespace, value []byte, err error)
	TxnBegan() uint64
}

// Device is a simulated KAML SSD plus the simulation engine it runs on.
type Device struct {
	eng  *sim.Engine
	arr  *flash.Array
	dev  *kamlssd.Device
	opts Options
	tap  HistoryTap
	mu   sync.Mutex // guards lazy fault-plan install
	plan *faultinject.Plan
}

// SetHistoryTap installs (or, with nil, removes) a history tap. Call it
// before issuing operations; the tap survives Crash/Reopen.
func (d *Device) SetHistoryTap(t HistoryTap) { d.tap = t }

// Open builds a device on a fresh virtual clock (or on opts.Engine).
func Open(opts Options) (*Device, error) {
	if err := opts.Flash.Validate(); err != nil {
		return nil, err
	}
	eng := opts.Engine
	if eng == nil {
		eng = sim.NewEngine()
	}
	arr := flash.New(eng, opts.Flash)
	var plan *faultinject.Plan
	if opts.Faults != nil {
		f := *opts.Faults
		plan = faultinject.New(faultinject.Config{
			Seed:             f.Seed,
			ReadFailProb:     f.ReadFailProb,
			ProgramFailProb:  f.ProgramFailProb,
			EraseFailProb:    f.EraseFailProb,
			CutAfterPrograms: f.CutAfterPrograms,
			CutAtTime:        f.CutAtTime,
			TornPageOnCut:    f.TornPageOnCut,
		})
		arr.SetInjector(plan)
	}
	ctrl := nvme.New(eng, opts.Transport)
	dev := kamlssd.New(arr, ctrl, opts.Firmware)
	return &Device{eng: eng, arr: arr, dev: dev, opts: opts, plan: plan}, nil
}

// ensurePlan installs an initially-benign fault plan on the flash array if
// none was configured at Open, so fault knobs can be turned at run time.
func (d *Device) ensurePlan() *faultinject.Plan {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.plan == nil {
		seed := int64(0)
		if d.opts.Faults != nil {
			seed = d.opts.Faults.Seed
		}
		d.plan = faultinject.New(faultinject.Config{Seed: seed})
		d.arr.SetInjector(d.plan)
	}
	return d.plan
}

// SetFaultProbs retargets the flash array's per-operation failure
// probabilities at run time, installing a benign fault plan first if the
// device was opened without one. The traffic simulator's flash-aging
// scenarios ramp these as simulated wear accumulates. Safe to call from
// any actor; draws stay on the plan's seeded PRNG stream.
func (d *Device) SetFaultProbs(read, program, erase float64) {
	d.ensurePlan().SetProbs(read, program, erase)
}

// TriggerPowerCut arms an immediate fault-plan power cut: the next flash
// operation is interrupted, and with torn set a program caught mid-flight
// leaves a torn page for the recovery scanner to detect. Unlike PowerCut
// (which halts the device instantly), the cut lands inside the flash
// array exactly the way a supply failure would. Follow with Crash and
// Reopen, as with any power loss.
func (d *Device) TriggerPowerCut(torn bool) {
	d.ensurePlan().CutNow(torn)
}

// CrashImage is what survives a power cut: the flash array's contents and
// the battery-backed NVRAM, still attached to the original virtual clock.
// Pass it to Reopen to run recovery.
type CrashImage struct {
	eng  *sim.Engine
	arr  *flash.Array
	nv   *kamlssd.NVRAM
	opts Options
	tap  HistoryTap
	plan *faultinject.Plan // fault plan still installed on the array
}

// Crash cuts power to the device and waits for its internal actors to
// halt, then returns the surviving state. Call from a simulation actor.
// Unlike Close nothing is drained: values still in the staging buffers
// stay there (they are battery-backed) and everything volatile is lost.
// In-flight operations fail with ErrPowerLoss; the device is unusable
// afterwards — hand the image to Reopen.
func (d *Device) Crash() *CrashImage {
	var id uint64
	if t := d.tap; t != nil {
		id = t.OpInvoked(OpCrash, 0, nil)
		defer func() { t.OpCompleted(id, 0, nil, nil) }()
	}
	d.dev.PowerFail()
	d.dev.AwaitHalt()
	d.mu.Lock()
	plan := d.plan
	d.mu.Unlock()
	return &CrashImage{eng: d.eng, arr: d.arr, nv: d.dev.NVRAM(), opts: d.opts, tap: d.tap, plan: plan}
}

// PowerCut cuts power without waiting for the device to halt — use it from
// a concurrent actor while operations are in flight. Follow with Crash
// (which is then just the halt-and-capture step) before Reopen.
func (d *Device) PowerCut() { d.dev.PowerFail() }

// Reopen runs power-failure recovery on a crash image: the firmware scans
// the flash logs to rebuild every namespace's mapping table
// (newest-sequence-wins, honoring snapshot cutoffs), discards batches that
// never committed, and replays committed staging-buffer values. The
// returned device runs on the same virtual clock; Stats on it reports the
// Recovered*/Replayed*/Dropped* counters. Call from a simulation actor.
func Reopen(img *CrashImage) (*Device, error) {
	var id uint64
	if t := img.tap; t != nil {
		id = t.OpInvoked(OpReopen, 0, nil)
	}
	ctrl := nvme.New(img.eng, img.opts.Transport)
	dev, err := kamlssd.Recover(img.arr, ctrl, img.opts.Firmware, img.nv)
	if t := img.tap; t != nil {
		t.OpCompleted(id, 0, nil, err)
	}
	if err != nil {
		return nil, err
	}
	return &Device{eng: img.eng, arr: img.arr, dev: dev, opts: img.opts, tap: img.tap, plan: img.plan}, nil
}

// Go runs fn as a simulation actor. All device operations must happen
// inside an actor.
func (d *Device) Go(fn func()) { d.eng.Go("app", fn) }

// Wait blocks the (real-world) caller until every actor has finished.
func (d *Device) Wait() { d.eng.Wait() }

// Now returns the current virtual time.
func (d *Device) Now() time.Duration { return d.eng.Now() }

// Sleep advances the calling actor by d of virtual time.
func (d *Device) Sleep(dur time.Duration) { d.eng.Sleep(dur) }

// Engine exposes the simulation engine (for spawning workers).
func (d *Device) Engine() *sim.Engine { return d.eng }

// WaitGroup joins actors on the simulated clock. Actors must never block
// on ordinary channels or sync primitives (that would stall the virtual
// clock); use this to wait for workers spawned with Go.
type WaitGroup struct{ wg *sim.WaitGroup }

// NewWaitGroup returns a simulation-aware wait group.
func (d *Device) NewWaitGroup() *WaitGroup {
	return &WaitGroup{wg: d.eng.NewWaitGroup()}
}

// Add adds delta to the counter.
func (w *WaitGroup) Add(delta int) { w.wg.Add(delta) }

// Done decrements the counter.
func (w *WaitGroup) Done() { w.wg.Done() }

// Wait parks the calling actor until the counter reaches zero.
func (w *WaitGroup) Wait() { w.wg.Wait() }

// Raw exposes the firmware device for advanced use (experiments).
func (d *Device) Raw() *kamlssd.Device { return d.dev }

// Close drains the logs and stops the device's background actors. Call it
// from an actor before the simulation ends.
func (d *Device) Close() { d.dev.Close() }

// NamespaceOptions configure CreateNamespace (Table I "attributes").
type NamespaceOptions struct {
	// ExpectedKeys sizes the namespace's mapping table (0 = device default).
	ExpectedKeys int
	// Logs bounds how many of the device's logs serve this namespace
	// (0 = all; the Fig. 8 tuning knob).
	Logs int
	// TreeIndex selects a B+tree mapping table instead of the default hash
	// table: ordered keys and no load-factor ceiling, at O(log n) lookup
	// cost (§IV-C's per-namespace index flexibility).
	TreeIndex bool
}

// Namespace identifies a key-value namespace.
type Namespace = uint32

// CreateNamespace allocates a namespace and returns its ID.
func (d *Device) CreateNamespace(opts NamespaceOptions) (Namespace, error) {
	capacity := 0
	if opts.ExpectedKeys > 0 {
		capacity = opts.ExpectedKeys * 4 / 3 // ~0.75 load factor
	}
	kind := kamlssd.IndexHash
	if opts.TreeIndex {
		kind = kamlssd.IndexTree
	}
	return d.dev.CreateNamespace(kamlssd.NamespaceAttrs{
		IndexCapacity: capacity,
		NumLogs:       opts.Logs,
		Index:         kind,
	})
}

// DeleteNamespace destroys a namespace; its records become garbage.
func (d *Device) DeleteNamespace(ns Namespace) error {
	return d.dev.DeleteNamespace(ns)
}

// Get retrieves the value stored under (ns, key).
func (d *Device) Get(ns Namespace, key uint64) ([]byte, error) {
	t := d.tap
	if t == nil {
		return d.dev.Get(ns, key)
	}
	id := t.OpInvoked(OpGet, 0, []Record{{Namespace: ns, Key: key}})
	v, err := d.dev.Get(ns, key)
	t.OpCompleted(id, ns, v, err)
	return v, err
}

// CommitTS returns the device's current commit timestamp — the sequence
// number of the newest committed write. Values returned here are valid
// arguments to GetAt, but nothing retains the versions visible at them:
// an overwrite makes the old version collectable immediately. Use
// PinCurrent (or a Snapshot) to hold a timestamp's view in place.
func (d *Device) CommitTS() uint64 { return d.dev.CommitTS() }

// PinCurrent pins and returns the newest settled commit timestamp: until
// the pin is released, pruning and garbage collection keep every version
// visible at it, so GetAt(ns, key, ts) keeps resolving to the values that
// were current when the pin was taken. Pins are refcounted and cheap —
// they hold back reclamation of superseded versions, not writes. Callers
// must pair each PinCurrent with a ReleasePin.
func (d *Device) PinCurrent() uint64 { return d.dev.PinCurrent() }

// ReleasePin drops one reference to a pin taken by PinCurrent. Once a
// timestamp has no pins and no snapshot cutoff, the versions only it
// could see become collectable.
func (d *Device) ReleasePin(ts uint64) { d.dev.ReleasePin(ts) }

// GetAt retrieves the value stored under (ns, key) as of commit timestamp
// ts: the newest version committed at or before ts ("time travel"). The
// version is pinned against garbage collection only for the duration of
// the call — for a stable long-lived view, create a Snapshot or use
// Cache.BeginSI. A ts of CommitTS() reads the present; ts past a
// snapshot's creation point is clamped to the snapshot's cutoff.
func (d *Device) GetAt(ns Namespace, key uint64, ts uint64) ([]byte, error) {
	t := d.tap
	if t == nil {
		return d.dev.GetAt(ns, key, ts)
	}
	id := t.OpInvoked(OpGet, 0, []Record{{Namespace: ns, Key: key}})
	v, err := d.dev.GetAt(ns, key, ts)
	t.OpCompleted(id, ns, v, err)
	return v, err
}

// Put atomically inserts or updates a single key-value pair.
func (d *Device) Put(ns Namespace, key uint64, value []byte) error {
	recs := []kamlssd.PutRecord{{Namespace: ns, Key: key, Value: value}}
	t := d.tap
	if t == nil {
		return d.dev.Put(recs)
	}
	id := t.OpInvoked(OpPut, 0, recs)
	err := d.dev.Put(recs)
	t.OpCompleted(id, ns, nil, err)
	return err
}

// Record is one element of an atomic batch Put.
type Record = kamlssd.PutRecord

// validateBatch enforces the PutBatch contract: at least one record and no
// repeated (namespace, key). Checked host-side so a malformed batch fails
// fast with a typed error instead of costing a device round trip.
func validateBatch(records []Record) error {
	if len(records) == 0 {
		return ErrEmptyBatch
	}
	if len(records) > 1 {
		seen := make(map[[2]uint64]struct{}, len(records))
		for _, r := range records {
			k := [2]uint64{uint64(r.Namespace), r.Key}
			if _, dup := seen[k]; dup {
				return fmt.Errorf("%w: ns %d key %d", ErrDuplicateKey, r.Namespace, r.Key)
			}
			seen[k] = struct{}{}
		}
	}
	return nil
}

// PutBatch atomically inserts or updates several key-value pairs, possibly
// across namespaces — the paper's multi-part atomic write. Batches must be
// non-empty (ErrEmptyBatch) and free of repeated keys (ErrDuplicateKey).
func (d *Device) PutBatch(records []Record) error {
	t := d.tap
	if t == nil {
		if err := validateBatch(records); err != nil {
			return err
		}
		return d.dev.Put(records)
	}
	id := t.OpInvoked(OpPutBatch, 0, records)
	err := validateBatch(records)
	if err == nil {
		err = d.dev.Put(records)
	}
	t.OpCompleted(id, 0, nil, err)
	return err
}

// GetFuture is an in-flight AsyncGet. Wait parks the calling actor until
// the device completes the command.
type GetFuture struct {
	f    *cmdq.Future
	tap  HistoryTap
	id   uint64
	ns   Namespace
	once sync.Once
}

// Wait blocks (on the virtual clock) until the Get completes.
func (f *GetFuture) Wait() ([]byte, error) {
	res := f.f.Wait()
	if f.tap != nil {
		// A history tap records the completion when the caller first
		// observes it; a future never waited on stays pending in the
		// history, which the checker treats as "may or may not have
		// happened" — exactly its semantics.
		f.once.Do(func() { f.tap.OpCompleted(f.id, f.ns, res.Value, res.Err) })
	}
	return res.Value, res.Err
}

// Ready reports, without blocking, whether the completion has arrived.
func (f *GetFuture) Ready() bool { return f.f.Ready() }

// PutFuture is an in-flight AsyncPut or AsyncPutBatch.
type PutFuture struct {
	f    *cmdq.Future
	tap  HistoryTap
	id   uint64
	once sync.Once
}

// Wait blocks (on the virtual clock) until the write is acknowledged.
func (f *PutFuture) Wait() error {
	err := f.f.Wait().Err
	if f.tap != nil {
		f.once.Do(func() { f.tap.OpCompleted(f.id, 0, nil, err) })
	}
	return err
}

// Ready reports, without blocking, whether the completion has arrived.
func (f *PutFuture) Ready() bool { return f.f.Ready() }

// AsyncGet submits a Get and returns immediately with a future. Issuing
// many before the first Wait keeps the device's command pipeline full —
// the same queue-depth game a real NVMe host plays. Call from an actor.
func (d *Device) AsyncGet(ns Namespace, key uint64) *GetFuture {
	fut := &GetFuture{tap: d.tap, ns: ns}
	if fut.tap != nil {
		fut.id = fut.tap.OpInvoked(OpGet, 0, []Record{{Namespace: ns, Key: key}})
	}
	fut.f = d.dev.SubmitGet(ns, key)
	return fut
}

// AsyncPut submits a single-record Put and returns immediately with a
// future. Concurrent small AsyncPuts are candidates for the device's group
// commit: the coalescer may merge them into one multi-record NVRAM commit,
// amortizing the per-command firmware and completion costs.
func (d *Device) AsyncPut(ns Namespace, key uint64, value []byte) *PutFuture {
	recs := []kamlssd.PutRecord{{Namespace: ns, Key: key, Value: value}}
	fut := &PutFuture{tap: d.tap}
	if fut.tap != nil {
		fut.id = fut.tap.OpInvoked(OpPut, 0, recs)
	}
	fut.f = d.dev.SubmitPut(recs)
	return fut
}

// AsyncPutBatch submits an atomic multi-record write and returns a future.
// Validation failures (ErrEmptyBatch, ErrDuplicateKey) surface through the
// future's Wait, never through a neighboring command.
func (d *Device) AsyncPutBatch(records []Record) *PutFuture {
	fut := &PutFuture{tap: d.tap}
	if fut.tap != nil {
		fut.id = fut.tap.OpInvoked(OpPutBatch, 0, records)
	}
	if err := validateBatch(records); err != nil {
		fut.f = cmdq.Resolved(d.eng, cmdq.Result{Err: err})
		return fut
	}
	fut.f = d.dev.SubmitPut(records)
	return fut
}

// NamespaceKeys returns every key in the namespace in ascending order.
// Combined with Snapshot it is the live-migration primitive: snapshot a
// namespace, enumerate the snapshot's frozen key set, and stream the
// records elsewhere while writes keep flowing to the origin (see
// internal/cluster).
func (d *Device) NamespaceKeys(ns Namespace) ([]uint64, error) {
	return d.dev.NamespaceKeys(ns)
}

// Flush waits until every acknowledged Put has reached flash. KAML's
// durability does not require it (the staging buffers are battery-backed);
// it exists for tests and orderly shutdown.
func (d *Device) Flush() { d.dev.Flush() }

// TuneNamespaceLogs changes how many logs serve the namespace (Fig. 8).
func (d *Device) TuneNamespaceLogs(ns Namespace, logs int) error {
	t := d.tap
	if t == nil {
		return d.dev.SetNamespaceLogs(ns, logs)
	}
	id := t.OpInvoked(OpTuneLogs, 0, []Record{{Namespace: ns, Key: uint64(logs)}})
	err := d.dev.SetNamespaceLogs(ns, logs)
	t.OpCompleted(id, ns, nil, err)
	return err
}

// Snapshot creates a read-only, point-in-time snapshot of the namespace.
// A snapshot is an index-less shell that pins the namespace's commit
// timestamp: reads resolve through the live index's version chains,
// selecting the newest version at or below the pinned cutoff. Records are
// shared on flash and kept alive by the garbage collector while any
// snapshot (or in-flight snapshot-isolation transaction) can still see
// them (§I's "additional services like snapshots").
func (d *Device) Snapshot(ns Namespace) (Namespace, error) {
	t := d.tap
	if t == nil {
		return d.dev.SnapshotNamespace(ns)
	}
	id := t.OpInvoked(OpSnapshot, 0, []Record{{Namespace: ns}})
	snap, err := d.dev.SnapshotNamespace(ns)
	t.OpCompleted(id, snap, nil, err)
	return snap, err
}

// CacheOptions configure the host caching layer (paper §III-D).
type CacheOptions struct {
	// CapacityBytes bounds cached value bytes (controls the hit ratio).
	CapacityBytes int64
	// RecordsPerLock sets the locking granularity (1 = record-level).
	RecordsPerLock int
}

// Cache is the host caching layer: a DRAM record cache plus a transaction
// manager over the SSD's atomic Put, offering two isolation levels —
// serializable SS2PL (Begin) and snapshot isolation (BeginSI).
type Cache struct {
	c *cache.Cache
	d *Device
}

// NewCache builds a caching layer over the device.
func (d *Device) NewCache(opts CacheOptions) *Cache {
	return &Cache{
		c: cache.New(d.dev, cache.Config{
			CapacityBytes:  opts.CapacityBytes,
			RecordsPerLock: opts.RecordsPerLock,
		}),
		d: d,
	}
}

// CreateTable creates a namespace sized for the expected row count and
// returns it for use with transactions.
func (c *Cache) CreateTable(name string, expectedRows int) (Namespace, error) {
	return c.c.CreateTable(name, storage.TableHint{ExpectedRows: expectedRows})
}

// HitRatio reports the cache's hit ratio so far.
func (c *Cache) HitRatio() float64 { return c.c.HitRatio() }

// Txn is a transaction on the caching layer (paper Table II / Fig. 2).
type Txn struct {
	tx  storage.Tx
	tap HistoryTap
	id  uint64
}

// Begin starts a transaction (TransactionBegin).
func (c *Cache) Begin() *Txn {
	t := &Txn{tx: c.c.Begin(), tap: c.d.tap}
	if t.tap != nil {
		t.id = t.tap.TxnBegan()
	}
	return t
}

// BeginSI starts a snapshot-isolation transaction. Its reads are served
// from a snapshot pinned at begin — they take no locks, never block, and
// never abort on conflicts with readers or writers; long analytical reads
// coexist with update traffic. Writes still lock and follow first-
// committer-wins: if another transaction committed to the same key after
// this transaction's snapshot, the write fails with ErrTxnAborted (retry
// it). Write-skew is possible — use Begin (SS2PL, serializable) when that
// matters.
func (c *Cache) BeginSI() *Txn {
	t := &Txn{tx: c.c.BeginSI(), tap: c.d.tap}
	if t.tap != nil {
		t.id = t.tap.TxnBegan()
	}
	return t
}

// TestingDisableSIValidation turns off first-committer-wins validation on
// snapshot-isolation writes, making lost updates possible. Defect-injection
// hook for the model checker's SI self-test (internal/check) — never call
// it in production code.
func (c *Cache) TestingDisableSIValidation() { c.c.DisableSIValidation() }

// Read returns the value under (ns, key) with a shared lock
// (TransactionRead).
func (t *Txn) Read(ns Namespace, key uint64) ([]byte, error) {
	if t.tap == nil {
		return t.tx.Read(ns, key)
	}
	id := t.tap.OpInvoked(OpTxnRead, t.id, []Record{{Namespace: ns, Key: key}})
	v, err := t.tx.Read(ns, key)
	t.tap.OpCompleted(id, ns, v, err)
	return v, err
}

// Update stages a new value under an exclusive lock (TransactionUpdate).
func (t *Txn) Update(ns Namespace, key uint64, value []byte) error {
	if t.tap == nil {
		return t.tx.Update(ns, key, value)
	}
	id := t.tap.OpInvoked(OpTxnUpdate, t.id, []Record{{Namespace: ns, Key: key, Value: value}})
	err := t.tx.Update(ns, key, value)
	t.tap.OpCompleted(id, ns, nil, err)
	return err
}

// Insert stages a new record under an exclusive lock (TransactionInsert).
func (t *Txn) Insert(ns Namespace, key uint64, value []byte) error {
	if t.tap == nil {
		return t.tx.Insert(ns, key, value)
	}
	id := t.tap.OpInvoked(OpTxnInsert, t.id, []Record{{Namespace: ns, Key: key, Value: value}})
	err := t.tx.Insert(ns, key, value)
	t.tap.OpCompleted(id, ns, nil, err)
	return err
}

// Commit atomically persists the write set and releases locks
// (TransactionCommit).
func (t *Txn) Commit() error {
	if t.tap == nil {
		return t.tx.Commit()
	}
	id := t.tap.OpInvoked(OpTxnCommit, t.id, nil)
	err := t.tx.Commit()
	t.tap.OpCompleted(id, 0, nil, err)
	return err
}

// Abort discards staged writes and releases locks (TransactionAbort).
func (t *Txn) Abort() {
	if t.tap == nil {
		t.tx.Abort()
		return
	}
	id := t.tap.OpInvoked(OpTxnAbort, t.id, nil)
	t.tx.Abort()
	t.tap.OpCompleted(id, 0, nil, nil)
}

// Free releases the transaction's resources (TransactionFree).
func (t *Txn) Free() { t.tx.Free() }

// IsRetryable reports whether err is a concurrency-control abort the
// application should retry.
func IsRetryable(err error) bool { return errors.Is(err, storage.ErrAborted) }

// Stats is a snapshot of firmware counters.
type Stats = kamlssd.Stats

// Stats returns device counters (programs, GC activity, probes, ...).
func (d *Device) Stats() Stats { return d.dev.Stats() }

// Telemetry returns the device's metrics registry (counters, gauges,
// per-stage latency histograms), or nil when
// Options.Firmware.DisableTelemetry is set. The registry is read with
// atomic snapshots only, so scraping it from plain goroutines (an HTTP
// admin endpoint, a bench reporter) never touches the simulation's clock
// or locks.
func (d *Device) Telemetry() *telemetry.Registry { return d.dev.Telemetry() }
