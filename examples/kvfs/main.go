// kvfs: a toy page-based file system on a KAML namespace — the use case
// the paper sketches in §III-A ("a conventional page-based file system
// could treat keys as block addresses and store 4 KB pages as values").
//
// Inodes and data pages are both records in one namespace; the key space
// is partitioned by a type bit. A multi-record atomic PutBatch commits an
// inode together with its data pages, so a crash can never observe a file
// whose length disagrees with its contents — without any journal.
//
//	go run ./examples/kvfs
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"

	kaml "github.com/kaml-ssd/kaml"
)

const pageSize = 4096

// Key layout: bit 63 selects inode (0) vs data page (1); data-page keys
// pack (inode number << 20 | page index).
func inodeKey(ino uint64) uint64      { return ino }
func pageKey(ino, page uint64) uint64 { return 1<<63 | ino<<20 | page }

// FS is the toy file system.
type FS struct {
	dev   *kaml.Device
	ns    kaml.Namespace
	names map[string]uint64 // directory: path -> inode (kept in host memory)
	next  uint64
}

// NewFS mounts a fresh file system on a new namespace.
func NewFS(dev *kaml.Device) (*FS, error) {
	ns, err := dev.CreateNamespace(kaml.NamespaceOptions{ExpectedKeys: 100_000})
	if err != nil {
		return nil, err
	}
	return &FS{dev: dev, ns: ns, names: make(map[string]uint64), next: 1}, nil
}

// WriteFile stores a whole file atomically: every data page plus the inode
// go into one multi-record Put.
func (fs *FS) WriteFile(path string, data []byte) error {
	ino, ok := fs.names[path]
	if !ok {
		ino = fs.next
		fs.next++
		fs.names[path] = ino
	}
	var batch []kaml.Record
	for page := uint64(0); int(page*pageSize) < len(data) || page == 0; page++ {
		lo := int(page) * pageSize
		hi := lo + pageSize
		if hi > len(data) {
			hi = len(data)
		}
		batch = append(batch, kaml.Record{
			Namespace: fs.ns, Key: pageKey(ino, page),
			Value: append([]byte(nil), data[lo:hi]...),
		})
		if hi == len(data) {
			break
		}
	}
	inode := make([]byte, 16)
	binary.LittleEndian.PutUint64(inode[0:8], uint64(len(data)))
	binary.LittleEndian.PutUint64(inode[8:16], uint64(len(batch)))
	batch = append(batch, kaml.Record{Namespace: fs.ns, Key: inodeKey(ino), Value: inode})
	return fs.dev.PutBatch(batch)
}

// ReadFile fetches the inode, then its pages.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	ino, ok := fs.names[path]
	if !ok {
		return nil, fmt.Errorf("kvfs: no such file %q", path)
	}
	inode, err := fs.dev.Get(fs.ns, inodeKey(ino))
	if err != nil {
		return nil, err
	}
	size := binary.LittleEndian.Uint64(inode[0:8])
	pages := binary.LittleEndian.Uint64(inode[8:16])
	out := make([]byte, 0, size)
	for p := uint64(0); p < pages; p++ {
		pg, err := fs.dev.Get(fs.ns, pageKey(ino, p))
		if err != nil {
			return nil, err
		}
		out = append(out, pg...)
	}
	return out[:size], nil
}

func main() {
	dev, err := kaml.Open(kaml.SmallOptions())
	if err != nil {
		log.Fatal(err)
	}
	dev.Go(func() {
		defer dev.Close()
		fs, err := NewFS(dev)
		if err != nil {
			log.Fatal(err)
		}

		// A small file and a multi-page file.
		readme := []byte("kvfs: files are key-value records; no FTL-on-FTL log stacking.\n")
		if err := fs.WriteFile("/README", readme); err != nil {
			log.Fatal(err)
		}
		big := bytes.Repeat([]byte("0123456789abcdef"), 1024) // 16 KB = 4 pages
		if err := fs.WriteFile("/data.bin", big); err != nil {
			log.Fatal(err)
		}

		// Overwrite in place: the SSD's log-structured FTL absorbs it as
		// appends; old pages become garbage for the in-device GC.
		if err := fs.WriteFile("/README", append(readme, []byte("rev 2\n")...)); err != nil {
			log.Fatal(err)
		}

		got, err := fs.ReadFile("/README")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("/README (%d bytes):\n%s", len(got), got)

		got, err = fs.ReadFile("/data.bin")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("/data.bin: %d bytes, intact=%v\n", len(got), bytes.Equal(got, big))

		st := dev.Stats()
		fmt.Printf("device: %d records written, %d flash programs, simulated time %v\n",
			st.PutRecords, st.Programs, dev.Now())
	})
	dev.Wait()
}
