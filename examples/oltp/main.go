// OLTP example: a small TPC-B-style bank running on the KAML caching
// layer's transactions (paper §III-D, Table II). Concurrent tellers move
// money between accounts under strong strict two-phase locking; the final
// audit shows no money was created or destroyed, and the run reports
// throughput and the cache hit ratio.
//
//	go run ./examples/oltp
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	kaml "github.com/kaml-ssd/kaml"
)

const (
	accounts     = 500
	tellers      = 8
	txnsPerTell  = 200
	initialFunds = 1_000
)

func balance(v []byte) int64 { return int64(binary.LittleEndian.Uint64(v)) }
func funds(b int64) []byte {
	v := make([]byte, 8)
	binary.LittleEndian.PutUint64(v, uint64(b))
	return v
}

func main() {
	dev, err := kaml.Open(kaml.SmallOptions())
	if err != nil {
		log.Fatal(err)
	}
	cache := dev.NewCache(kaml.CacheOptions{
		CapacityBytes:  1 << 20,
		RecordsPerLock: 1, // the record-level locking the paper argues for
	})

	dev.Go(func() {
		defer dev.Close()
		bank, err := cache.CreateTable("bank", accounts)
		if err != nil {
			log.Fatal(err)
		}

		// Load: one transaction seeds every account atomically.
		seed := cache.Begin()
		for a := uint64(0); a < accounts; a++ {
			if err := seed.Insert(bank, a, funds(initialFunds)); err != nil {
				log.Fatal(err)
			}
		}
		if err := seed.Commit(); err != nil {
			log.Fatal(err)
		}
		seed.Free()

		// Concurrent tellers transfer random amounts. Wait-die may abort a
		// transaction under contention; IsRetryable says to run it again.
		start := dev.Now()
		wg := dev.NewWaitGroup()
		for w := 0; w < tellers; w++ {
			w := w
			wg.Add(1)
			dev.Go(func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < txnsPerTell; i++ {
					from := uint64(rng.Intn(accounts))
					to := uint64(rng.Intn(accounts))
					if from == to {
						to = (to + 1) % accounts
					}
					amount := int64(rng.Intn(50) + 1)
					for { // retry loop
						err := transfer(cache, bank, from, to, amount)
						if err == nil {
							break
						}
						if !kaml.IsRetryable(err) {
							log.Fatal(err)
						}
					}
				}
			})
		}
		wg.Wait()
		elapsed := dev.Now() - start

		// Audit: the books must balance.
		var total int64
		audit := cache.Begin()
		for a := uint64(0); a < accounts; a++ {
			v, err := audit.Read(bank, a)
			if err != nil {
				log.Fatal(err)
			}
			total += balance(v)
		}
		audit.Commit()
		audit.Free()

		txns := tellers * txnsPerTell
		fmt.Printf("%d transfer transactions, %d tellers\n", txns, tellers)
		fmt.Printf("simulated time: %v (%.0f txn/s)\n", elapsed,
			float64(txns)/elapsed.Seconds())
		fmt.Printf("cache hit ratio: %.2f\n", cache.HitRatio())
		fmt.Printf("total funds: %d (expected %d) — %s\n",
			total, int64(accounts*initialFunds), verdict(total == accounts*initialFunds))
	})
	dev.Wait()
}

// transfer moves amount between two accounts in one transaction.
func transfer(cache *kaml.Cache, bank kaml.Namespace, from, to uint64, amount int64) error {
	tx := cache.Begin()
	defer tx.Free()
	fv, err := tx.Read(bank, from)
	if err != nil {
		return err
	}
	tv, err := tx.Read(bank, to)
	if err != nil {
		return err
	}
	if err := tx.Update(bank, from, funds(balance(fv)-amount)); err != nil {
		return err
	}
	if err := tx.Update(bank, to, funds(balance(tv)+amount)); err != nil {
		return err
	}
	return tx.Commit()
}

func verdict(ok bool) string {
	if ok {
		return "books balance"
	}
	return "MONEY LEAKED"
}
