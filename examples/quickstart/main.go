// Quickstart: open a simulated KAML SSD, create namespaces, store and
// fetch records, batch-update atomically, and read device statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	kaml "github.com/kaml-ssd/kaml"
)

func main() {
	// A scaled-down device keeps the example instant; DefaultOptions()
	// gives the paper's 16-channel x 4-chip geometry.
	dev, err := kaml.Open(kaml.SmallOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Everything that touches the device runs on its simulated clock, so
	// the work happens inside an actor started with Go, and Wait blocks
	// until the simulation drains.
	dev.Go(func() {
		defer dev.Close()

		// Namespaces are independent key-value stores sharing the SSD —
		// one per table, file, or application (paper §III-A).
		users, err := dev.CreateNamespace(kaml.NamespaceOptions{ExpectedKeys: 10_000})
		if err != nil {
			log.Fatal(err)
		}
		orders, err := dev.CreateNamespace(kaml.NamespaceOptions{ExpectedKeys: 50_000})
		if err != nil {
			log.Fatal(err)
		}

		// Single-record Put and Get. The value can be any size up to a
		// flash page; the FTL maps the key straight to flash (no file
		// system, no LBA indirection).
		if err := dev.Put(users, 1, []byte(`{"name":"ada","plan":"pro"}`)); err != nil {
			log.Fatal(err)
		}
		v, err := dev.Get(users, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("users/1 = %s\n", v)

		// Multi-record atomic Put — the paper's multi-part atomic write.
		// Either every record below becomes durable, or none do.
		batch := []kaml.Record{
			{Namespace: users, Key: 1, Value: []byte(`{"name":"ada","plan":"pro","orders":1}`)},
			{Namespace: orders, Key: 9001, Value: []byte(`{"user":1,"item":"ssd","qty":2}`)},
		}
		if err := dev.PutBatch(batch); err != nil {
			log.Fatal(err)
		}
		v, _ = dev.Get(orders, 9001)
		fmt.Printf("orders/9001 = %s\n", v)

		// Updates are appends in the multi-log FTL: no read-modify-write,
		// which is why small updates are fast (paper Fig. 5b).
		for i := 0; i < 100; i++ {
			if err := dev.Put(users, 1, []byte(fmt.Sprintf(`{"rev":%d}`, i))); err != nil {
				log.Fatal(err)
			}
		}
		v, _ = dev.Get(users, 1)
		fmt.Printf("users/1 after 100 updates = %s\n", v)

		st := dev.Stats()
		fmt.Printf("device time: %v | puts=%d gets=%d flash programs=%d\n",
			dev.Now(), st.Puts, st.Gets, st.Programs)
	})
	dev.Wait()
}
