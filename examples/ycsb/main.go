// YCSB example: run the paper's NoSQL workload mixes (Table III) against
// the KAML caching layer and print per-workload throughput — a miniature
// of Fig. 10 using only the public API.
//
//	go run ./examples/ycsb
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"

	kaml "github.com/kaml-ssd/kaml"
)

const (
	records   = 2_000
	valueSize = 1024 // the paper's YCSB record size
	workers   = 8
	opsPerW   = 300
)

// mix is one YCSB workload's operation ratios (paper Table III).
type mix struct {
	name                      string
	read, update, insert, rmw float64
}

var mixes = []mix{
	{"a", 0.5, 0.5, 0, 0},
	{"b", 0.95, 0.05, 0, 0},
	{"c", 1, 0, 0, 0},
	{"d", 0.95, 0, 0.05, 0},
	{"f", 0.5, 0, 0, 0.5},
}

func main() {
	for _, m := range mixes {
		opsPerSec, hit := runWorkload(m)
		fmt.Printf("workload %s: %8.0f ops/s  (cache hit ratio %.2f)\n", m.name, opsPerSec, hit)
	}
}

func runWorkload(m mix) (opsPerSec, hitRatio float64) {
	dev, err := kaml.Open(kaml.SmallOptions())
	if err != nil {
		log.Fatal(err)
	}
	// Cache sized below the data set so Gets reach the device (§V-E).
	cache := dev.NewCache(kaml.CacheOptions{CapacityBytes: records * valueSize * 2 / 5})

	dev.Go(func() {
		defer dev.Close()
		tbl, err := cache.CreateTable("ycsb", records*2)
		if err != nil {
			log.Fatal(err)
		}
		// Load phase.
		for base := 0; base < records; base += 50 {
			tx := cache.Begin()
			for k := base; k < base+50 && k < records; k++ {
				tx.Insert(tbl, uint64(k), value(uint64(k)))
			}
			if err := tx.Commit(); err != nil {
				log.Fatal(err)
			}
			tx.Free()
		}

		start := dev.Now()
		wg := dev.NewWaitGroup()
		var inserted atomic.Uint64
		inserted.Store(records)
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			dev.Go(func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < opsPerW; i++ {
					runOp(cache, tbl, m, rng, &inserted)
				}
			})
		}
		wg.Wait()
		elapsed := dev.Now() - start
		opsPerSec = float64(workers*opsPerW) / elapsed.Seconds()
		hitRatio = cache.HitRatio()
	})
	dev.Wait()
	return opsPerSec, hitRatio
}

// runOp draws one operation from the mix and retries wait-die aborts.
func runOp(cache *kaml.Cache, tbl kaml.Namespace, m mix, rng *rand.Rand, inserted *atomic.Uint64) {
	r := rng.Float64()
	key := zipfish(rng)
	for {
		var err error
		tx := cache.Begin()
		switch {
		case r < m.read:
			_, err = tx.Read(tbl, key)
		case r < m.read+m.update:
			err = tx.Update(tbl, key, value(key))
		case r < m.read+m.update+m.insert:
			k := inserted.Add(1)
			err = tx.Insert(tbl, k, value(k))
		default: // read-modify-write
			if _, err = tx.Read(tbl, key); err == nil {
				err = tx.Update(tbl, key, value(key))
			}
		}
		if err == nil {
			err = tx.Commit()
		}
		tx.Free()
		if err == nil || !kaml.IsRetryable(err) {
			return
		}
	}
}

// zipfish is a cheap skewed key chooser (hot head, long tail).
func zipfish(rng *rand.Rand) uint64 {
	r := rng.Float64()
	switch {
	case r < 0.5: // 50% of traffic on 5% of keys
		return uint64(rng.Intn(records / 20))
	case r < 0.8:
		return uint64(rng.Intn(records / 4))
	default:
		return uint64(rng.Intn(records))
	}
}

func value(key uint64) []byte {
	v := make([]byte, valueSize)
	for i := range v {
		v[i] = byte(key + uint64(i))
	}
	return v
}
