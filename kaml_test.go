package kaml_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	kaml "github.com/kaml-ssd/kaml"
)

// withDevice runs fn as a simulation actor on a small device.
func withDevice(t *testing.T, fn func(dev *kaml.Device)) {
	t.Helper()
	dev, err := kaml.Open(kaml.SmallOptions())
	if err != nil {
		t.Fatal(err)
	}
	dev.Go(func() {
		defer dev.Close()
		fn(dev)
	})
	dev.Wait()
}

func TestOpenValidatesConfig(t *testing.T) {
	opts := kaml.DefaultOptions()
	opts.Flash.Channels = 0
	if _, err := kaml.Open(opts); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	withDevice(t, func(dev *kaml.Device) {
		ns, err := dev.CreateNamespace(kaml.NamespaceOptions{ExpectedKeys: 100})
		if err != nil {
			t.Fatal(err)
		}
		if err := dev.Put(ns, 42, []byte("hello")); err != nil {
			t.Fatal(err)
		}
		v, err := dev.Get(ns, 42)
		if err != nil || string(v) != "hello" {
			t.Fatalf("%q %v", v, err)
		}
		if _, err := dev.Get(ns, 43); !errors.Is(err, kaml.ErrKeyNotFound) {
			t.Fatalf("missing key: %v", err)
		}
	})
}

func TestPutBatchAtomic(t *testing.T) {
	withDevice(t, func(dev *kaml.Device) {
		ns1, _ := dev.CreateNamespace(kaml.NamespaceOptions{})
		ns2, _ := dev.CreateNamespace(kaml.NamespaceOptions{})
		batch := []kaml.Record{
			{Namespace: ns1, Key: 1, Value: []byte("a")},
			{Namespace: ns2, Key: 1, Value: []byte("b")},
		}
		if err := dev.PutBatch(batch); err != nil {
			t.Fatal(err)
		}
		v1, _ := dev.Get(ns1, 1)
		v2, _ := dev.Get(ns2, 1)
		if string(v1) != "a" || string(v2) != "b" {
			t.Fatalf("%q %q", v1, v2)
		}
	})
}

func TestNamespaceLifecycle(t *testing.T) {
	withDevice(t, func(dev *kaml.Device) {
		ns, _ := dev.CreateNamespace(kaml.NamespaceOptions{Logs: 2})
		dev.Put(ns, 1, []byte("x"))
		if err := dev.TuneNamespaceLogs(ns, 4); err != nil {
			t.Fatal(err)
		}
		if err := dev.DeleteNamespace(ns); err != nil {
			t.Fatal(err)
		}
		if _, err := dev.Get(ns, 1); !errors.Is(err, kaml.ErrNoNamespace) {
			t.Fatalf("get after delete: %v", err)
		}
	})
}

func TestValueTooLarge(t *testing.T) {
	withDevice(t, func(dev *kaml.Device) {
		ns, _ := dev.CreateNamespace(kaml.NamespaceOptions{})
		big := make([]byte, kaml.SmallOptions().Flash.PageSize+1)
		if err := dev.Put(ns, 1, big); !errors.Is(err, kaml.ErrValueTooLarge) {
			t.Fatalf("err=%v", err)
		}
	})
}

func TestFlushDrainsToFlash(t *testing.T) {
	withDevice(t, func(dev *kaml.Device) {
		ns, _ := dev.CreateNamespace(kaml.NamespaceOptions{})
		for k := uint64(0); k < 30; k++ {
			dev.Put(ns, k, bytes.Repeat([]byte{byte(k)}, 400))
		}
		dev.Flush()
		if dev.Stats().Programs == 0 {
			t.Fatal("nothing programmed after Flush")
		}
		for k := uint64(0); k < 30; k++ {
			v, err := dev.Get(ns, k)
			if err != nil || !bytes.Equal(v, bytes.Repeat([]byte{byte(k)}, 400)) {
				t.Fatalf("key %d: %v", k, err)
			}
		}
	})
}

func TestTransactions(t *testing.T) {
	dev, err := kaml.Open(kaml.SmallOptions())
	if err != nil {
		t.Fatal(err)
	}
	cache := dev.NewCache(kaml.CacheOptions{CapacityBytes: 1 << 20})
	dev.Go(func() {
		defer dev.Close()
		tbl, err := cache.CreateTable("accounts", 100)
		if err != nil {
			t.Error(err)
			return
		}
		tx := cache.Begin()
		tx.Insert(tbl, 1, []byte("100"))
		tx.Insert(tbl, 2, []byte("200"))
		if err := tx.Commit(); err != nil {
			t.Error(err)
			return
		}
		tx.Free()

		// Transfer inside a transaction; abort leaves balances unchanged.
		tx2 := cache.Begin()
		tx2.Update(tbl, 1, []byte("0"))
		tx2.Update(tbl, 2, []byte("300"))
		tx2.Abort()
		tx2.Free()

		tx3 := cache.Begin()
		v1, _ := tx3.Read(tbl, 1)
		v2, _ := tx3.Read(tbl, 2)
		if string(v1) != "100" || string(v2) != "200" {
			t.Errorf("abort leaked: %q %q", v1, v2)
		}
		tx3.Commit()
		tx3.Free()
		if cache.HitRatio() <= 0 {
			t.Error("no cache hits recorded")
		}
	})
	dev.Wait()
}

func TestIsRetryable(t *testing.T) {
	if kaml.IsRetryable(kaml.ErrKeyNotFound) {
		t.Fatal("not-found is not retryable")
	}
	if !kaml.IsRetryable(fmt.Errorf("wrapped: %w", kaml.ErrTxnAborted)) {
		t.Fatal("wrapped abort should be retryable")
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	withDevice(t, func(dev *kaml.Device) {
		ns, _ := dev.CreateNamespace(kaml.NamespaceOptions{})
		before := dev.Now()
		dev.Put(ns, 1, []byte("x"))
		if dev.Now() <= before {
			t.Fatal("Put cost no simulated time")
		}
	})
}

func TestSnapshots(t *testing.T) {
	withDevice(t, func(dev *kaml.Device) {
		ns, _ := dev.CreateNamespace(kaml.NamespaceOptions{})
		dev.Put(ns, 1, []byte("before"))
		snap, err := dev.Snapshot(ns)
		if err != nil {
			t.Fatal(err)
		}
		dev.Put(ns, 1, []byte("after"))
		v, err := dev.Get(snap, 1)
		if err != nil || string(v) != "before" {
			t.Fatalf("snapshot: %q %v", v, err)
		}
		if err := dev.Put(snap, 2, []byte("x")); !errors.Is(err, kaml.ErrReadOnly) {
			t.Fatalf("snapshot writable: %v", err)
		}
		if err := dev.DeleteNamespace(snap); err != nil {
			t.Fatal(err)
		}
	})
}

func TestTreeIndexOption(t *testing.T) {
	withDevice(t, func(dev *kaml.Device) {
		ns, err := dev.CreateNamespace(kaml.NamespaceOptions{TreeIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 300; k++ {
			if err := dev.Put(ns, k, []byte{byte(k)}); err != nil {
				t.Fatal(err)
			}
		}
		v, err := dev.Get(ns, 123)
		if err != nil || v[0] != 123 {
			t.Fatalf("%v %v", v, err)
		}
	})
}
